//! Per-problem-class circuit breakers.
//!
//! A *poisoned* problem class — a request shape whose sessions keep
//! ending in retry-ladder terminal failures or deadline misses — would
//! otherwise burn a full ladder climb (up to an FP64 rebuild) on every
//! arrival, starving healthy traffic. The breaker watches a sliding
//! window of terminal outcomes per class and walks the classic state
//! machine:
//!
//! ```text
//! Closed ──(failure rate ≥ threshold over ≥ min_samples)──▶ Open
//! Open ──(cooldown admission attempts observed)──▶ HalfOpen
//! HalfOpen ──(probe succeeds)──▶ Closed      HalfOpen ──(probe fails)──▶ Open
//! ```
//!
//! Everything is deterministic: the cooldown is counted in *admission
//! attempts*, not wall-clock time, and the per-trip cooldown jitter (so
//! many classes tripped together don't probe in lockstep) comes from a
//! seeded SplitMix64 stream — no wall-clock randomness anywhere, so a
//! replayed batch takes identical transitions.

use std::collections::{BTreeMap, VecDeque};

use crate::jitter;
use crate::ring::Ring;

/// The three breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every admission attempt passes; outcomes feed the window.
    Closed,
    /// Tripped: admission attempts are refused (and counted toward the
    /// cooldown that leads to [`BreakerState::HalfOpen`]).
    Open,
    /// Probing: a bounded number of probe requests are admitted at full
    /// quality; everything else is still refused until a probe verdict.
    HalfOpen,
}

impl BreakerState {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl core::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Breaker tuning. One config is shared by every class in a
/// [`BreakerRegistry`]; each class derives its own jitter stream from
/// `seed` and its name.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Master switch. When off, every admission attempt passes and no
    /// outcome is recorded — the compatibility behavior of `run_batch`.
    pub enabled: bool,
    /// Sliding-window length (terminal outcomes remembered per class).
    pub window: usize,
    /// Minimum outcomes in the window before the failure rate is trusted
    /// enough to trip.
    pub min_samples: usize,
    /// Terminal-failure fraction at or above which the breaker opens.
    pub failure_threshold: f64,
    /// Admission attempts observed while [`BreakerState::Open`] before
    /// the breaker goes half-open. Counted, not timed: determinism.
    pub cooldown: usize,
    /// Maximum extra cooldown attempts added per trip from the seeded
    /// jitter stream (`0` disables jitter). Spreads the half-open probes
    /// of classes that tripped together.
    pub cooldown_jitter: usize,
    /// Probes admitted while half-open.
    pub probes: usize,
    /// Probe successes required to close again.
    pub probe_successes: usize,
    /// Seed for the cooldown-jitter stream.
    pub seed: u64,
    /// Capacity of the registry's transition log ring — the bound that
    /// keeps a long-running daemon's breaker evidence from growing
    /// without limit. Oldest transitions are evicted first.
    pub transition_log_cap: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown: 4,
            cooldown_jitter: 2,
            probes: 1,
            probe_successes: 1,
            seed: 0xb4ea_4e4b_5eed_0001,
            transition_log_cap: 256,
        }
    }
}

impl BreakerConfig {
    /// Breakers off entirely (the `run_batch` compatibility shape).
    pub fn disabled() -> Self {
        BreakerConfig { enabled: false, ..Self::default() }
    }
}

/// What the breaker says about one admission attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum BreakerDecision {
    /// Pass. `probe` marks a half-open diagnostic request: it runs at
    /// full quality (no degradation) and its verdict alone decides
    /// whether the breaker closes or re-opens.
    Admit {
        /// True when this admission is a half-open probe.
        probe: bool,
    },
    /// Refuse: the breaker is open (or half-open with its probe quota
    /// already granted).
    Reject {
        /// Failure rate of the window that tripped the breaker.
        failure_rate: f64,
        /// Attempts left before half-open (0 while half-open).
        cooldown_remaining: usize,
    },
}

/// One class's breaker.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Sliding window of terminal outcomes, `true` = failure.
    window: VecDeque<bool>,
    /// Times this breaker has tripped (drives the jitter stream).
    trips: usize,
    /// Failure rate of the window at the last trip.
    last_failure_rate: f64,
    /// Admission attempts observed while open.
    attempts_while_open: usize,
    /// Cooldown target for the current open period (base + jitter).
    cooldown_target: usize,
    /// Probes granted but not yet recorded.
    probes_outstanding: usize,
    /// Probe successes seen this half-open period.
    probe_successes_seen: usize,
}

impl CircuitBreaker {
    /// A fresh, closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            window: VecDeque::new(),
            trips: 0,
            last_failure_rate: 0.0,
            attempts_while_open: 0,
            cooldown_target: 0,
            probes_outstanding: 0,
            probe_successes_seen: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has tripped.
    pub fn trips(&self) -> usize {
        self.trips
    }

    /// Failure fraction of the current window (0 when empty).
    pub fn failure_rate(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window.iter().filter(|&&f| f).count() as f64 / self.window.len() as f64
        }
    }

    /// One admission attempt for this class. While open, the attempt
    /// itself advances the cooldown; the attempt that completes the
    /// cooldown flips the breaker half-open and is admitted as the probe.
    pub fn on_admission_attempt(&mut self) -> BreakerDecision {
        if !self.cfg.enabled {
            return BreakerDecision::Admit { probe: false };
        }
        match self.state {
            BreakerState::Closed => BreakerDecision::Admit { probe: false },
            BreakerState::Open => {
                self.attempts_while_open += 1;
                if self.attempts_while_open >= self.cooldown_target {
                    self.state = BreakerState::HalfOpen;
                    self.probes_outstanding = 1;
                    self.probe_successes_seen = 0;
                    BreakerDecision::Admit { probe: true }
                } else {
                    BreakerDecision::Reject {
                        failure_rate: self.last_failure_rate,
                        cooldown_remaining: self.cooldown_target - self.attempts_while_open,
                    }
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_outstanding < self.cfg.probes {
                    self.probes_outstanding += 1;
                    BreakerDecision::Admit { probe: true }
                } else {
                    BreakerDecision::Reject {
                        failure_rate: self.last_failure_rate,
                        cooldown_remaining: 0,
                    }
                }
            }
        }
    }

    /// Records one completed session of this class. `probe` must echo the
    /// [`BreakerDecision::Admit`] flag the session was admitted with.
    pub fn record(&mut self, success: bool, probe: bool) {
        if !self.cfg.enabled {
            return;
        }
        if probe {
            self.probes_outstanding = self.probes_outstanding.saturating_sub(1);
            if !success {
                self.trip();
                return;
            }
            self.probe_successes_seen += 1;
            if self.probe_successes_seen >= self.cfg.probe_successes {
                self.close();
            }
            return;
        }
        // Non-probe stragglers finishing after a trip (in-flight when the
        // window crossed the threshold) must not perturb the open/half-
        // open bookkeeping; the probe verdict alone decides recovery.
        if self.state != BreakerState::Closed {
            return;
        }
        self.window.push_back(!success);
        while self.window.len() > self.cfg.window.max(1) {
            self.window.pop_front();
        }
        if self.window.len() >= self.cfg.min_samples.max(1)
            && self.failure_rate() >= self.cfg.failure_threshold
        {
            self.trip();
        }
    }

    fn trip(&mut self) {
        self.last_failure_rate = if self.window.is_empty() { 1.0 } else { self.failure_rate() };
        self.trips += 1;
        self.state = BreakerState::Open;
        self.attempts_while_open = 0;
        self.probes_outstanding = 0;
        self.probe_successes_seen = 0;
        let jitter = if self.cfg.cooldown_jitter == 0 {
            0
        } else {
            (jitter::splitmix64(self.cfg.seed.wrapping_add(self.trips as u64))
                % (self.cfg.cooldown_jitter as u64 + 1)) as usize
        };
        self.cooldown_target = self.cfg.cooldown.max(1) + jitter;
    }

    fn close(&mut self) {
        self.state = BreakerState::Closed;
        self.window.clear();
        self.probes_outstanding = 0;
        self.probe_successes_seen = 0;
        self.attempts_while_open = 0;
    }
}

/// One observed state change, for reports and tests.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakerTransition {
    /// The problem class whose breaker moved.
    pub class: String,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

impl core::fmt::Display for BreakerTransition {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {} → {}", self.class, self.from, self.to)
    }
}

/// The full private state of one breaker, exported for checkpointing. A
/// breaker rebuilt from its export makes bit-identical decisions on the
/// same admission/record stream — the per-class jitter seed re-derives
/// from the shared config and the class name, so only observed state
/// travels, never derived constants.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakerExport {
    /// Current state.
    pub state: BreakerState,
    /// Sliding outcome window, oldest first (`true` = failure).
    pub window: Vec<bool>,
    /// Trip count (drives the jitter stream position).
    pub trips: usize,
    /// Failure rate at the last trip.
    pub last_failure_rate: f64,
    /// Admission attempts observed while open.
    pub attempts_while_open: usize,
    /// Cooldown target of the current open period.
    pub cooldown_target: usize,
    /// Probes granted but not yet recorded.
    pub probes_outstanding: usize,
    /// Probe successes seen this half-open period.
    pub probe_successes_seen: usize,
}

impl CircuitBreaker {
    /// Exports every decision-relevant field for checkpointing.
    pub fn export(&self) -> BreakerExport {
        BreakerExport {
            state: self.state,
            window: self.window.iter().copied().collect(),
            trips: self.trips,
            last_failure_rate: self.last_failure_rate,
            attempts_while_open: self.attempts_while_open,
            cooldown_target: self.cooldown_target,
            probes_outstanding: self.probes_outstanding,
            probe_successes_seen: self.probe_successes_seen,
        }
    }

    /// Rebuilds a breaker from an export and its (per-class) config.
    pub fn from_export(cfg: BreakerConfig, e: &BreakerExport) -> Self {
        CircuitBreaker {
            cfg,
            state: e.state,
            window: e.window.iter().copied().collect(),
            trips: e.trips,
            last_failure_rate: e.last_failure_rate,
            attempts_while_open: e.attempts_while_open,
            cooldown_target: e.cooldown_target,
            probes_outstanding: e.probes_outstanding,
            probe_successes_seen: e.probe_successes_seen,
        }
    }
}

/// All breakers of a pool, keyed by problem class, sharing one config.
/// Created lazily per class; every state change lands in the
/// ring-bounded transition log in observation order (capacity
/// [`BreakerConfig::transition_log_cap`]).
#[derive(Clone, Debug, Default)]
pub struct BreakerRegistry {
    cfg: Option<BreakerConfig>,
    map: BTreeMap<String, CircuitBreaker>,
    transitions: Ring<BreakerTransition>,
}

impl BreakerRegistry {
    /// A registry handing each new class a breaker with this config (the
    /// class name is folded into the jitter seed so co-tripped classes
    /// de-synchronize their probes).
    pub fn new(cfg: BreakerConfig) -> Self {
        let transitions = Ring::new(cfg.transition_log_cap);
        BreakerRegistry { cfg: Some(cfg), map: BTreeMap::new(), transitions }
    }

    /// The shared config specialized to one class: the jitter seed is
    /// the class name FNV-folded into the shared seed, a pure function
    /// reconstructible after a restart.
    fn class_cfg(&self, class: &str) -> BreakerConfig {
        let mut cfg = self.cfg.clone().unwrap_or_default();
        cfg.seed = jitter::fold_seed(cfg.seed, class);
        cfg
    }

    fn breaker_mut(&mut self, class: &str) -> &mut CircuitBreaker {
        if !self.map.contains_key(class) {
            let cfg = self.class_cfg(class);
            self.map.insert(class.to_string(), CircuitBreaker::new(cfg));
        }
        self.map.get_mut(class).expect("breaker was just inserted")
    }

    /// Admission attempt for `class`, logging any state change.
    pub fn on_admission_attempt(&mut self, class: &str) -> BreakerDecision {
        let b = self.breaker_mut(class);
        let from = b.state();
        let decision = b.on_admission_attempt();
        let to = b.state();
        if from != to {
            self.transitions.push(BreakerTransition { class: class.to_string(), from, to });
        }
        decision
    }

    /// Records a completed session for `class`, logging any state change.
    pub fn record(&mut self, class: &str, success: bool, probe: bool) {
        let b = self.breaker_mut(class);
        let from = b.state();
        b.record(success, probe);
        let to = b.state();
        if from != to {
            self.transitions.push(BreakerTransition { class: class.to_string(), from, to });
        }
    }

    /// Current state of a class's breaker (`None` if the class has never
    /// been seen).
    pub fn state(&self, class: &str) -> Option<BreakerState> {
        self.map.get(class).map(|b| b.state())
    }

    /// The class's breaker, read-only.
    pub fn breaker(&self, class: &str) -> Option<&CircuitBreaker> {
        self.map.get(class)
    }

    /// The most recent state changes, in order (ring-bounded; see
    /// [`BreakerRegistry::transitions_evicted`] for how many older ones
    /// were dropped).
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Transitions evicted from the bounded log so far.
    pub fn transitions_evicted(&self) -> usize {
        self.transitions.evicted()
    }

    /// Exports every class's breaker state for checkpointing, in key
    /// order (deterministic).
    pub fn export(&self) -> Vec<(String, BreakerExport)> {
        self.map.iter().map(|(k, b)| (k.clone(), b.export())).collect()
    }

    /// Restores breakers from a checkpoint export. Existing breakers of
    /// the same classes are replaced; the per-class jitter seeds are
    /// re-derived from the registry config, so a restored registry takes
    /// bit-identical decisions on a replayed stream.
    pub fn restore(&mut self, entries: &[(String, BreakerExport)]) {
        for (class, e) in entries {
            let cfg = self.class_cfg(class);
            self.map.insert(class.clone(), CircuitBreaker::from_export(cfg, e));
        }
    }
}
