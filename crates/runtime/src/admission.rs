//! Admission control: bounded intake with per-priority-class capacity.
//!
//! The serve pool accepts work through this layer so callers get typed
//! *backpressure* instead of latency collapse: a request that cannot be
//! served now is refused immediately with an [`AdmissionError`] naming
//! exactly why — the bounded queue is full ([`AdmissionError::QueueFull`]),
//! the pressure signal shed it ([`AdmissionError::Shed`]), or its problem
//! class's circuit breaker is open ([`AdmissionError::BreakerOpen`]).
//! Nothing queues unboundedly, and nothing fails untyped.

use std::time::Duration;

/// Priority class of a solve request. Capacity is reserved per class and
/// load is shed in reverse order: [`Priority::BestEffort`] first,
/// [`Priority::Batch`] second, [`Priority::Interactive`] never (an
/// interactive request is only ever refused by a hard capacity bound or
/// an open breaker).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive foreground work; degraded last, never shed.
    Interactive,
    /// Normal throughput work (the default).
    #[default]
    Batch,
    /// Opportunistic work; first to be shed under pressure.
    BestEffort,
}

impl Priority {
    /// All classes, most- to least-protected.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::BestEffort];

    /// Index into per-priority arrays (0 = most protected).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::BestEffort => 2,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::BestEffort => "best-effort",
        }
    }
}

impl core::fmt::Display for Priority {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Typed admission refusal. Every rejected request carries exactly one of
/// these in its outcome; none of them means the process is unhealthy —
/// they are the overload-protection layer doing its job.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionError {
    /// The bounded queue (total or this priority's reservation) is full.
    QueueFull {
        /// Priority class of the refused request.
        priority: Priority,
        /// Queue depth at refusal.
        depth: usize,
        /// The bound that was hit (total capacity or the per-priority
        /// cap, whichever refused).
        capacity: usize,
    },
    /// The pressure signal exceeded this priority class's shed threshold:
    /// the pool prefers refusing cheap work now over missing deadlines on
    /// admitted work later.
    Shed {
        /// Priority class of the shed request.
        priority: Priority,
        /// Pressure value that triggered the shed, in `[0, 1]`.
        pressure: f64,
    },
    /// The request's problem class has tripped its circuit breaker:
    /// recent sessions of this class kept failing terminally, so new work
    /// is refused until a half-open probe proves the class healthy again.
    BreakerOpen {
        /// The poisoned problem class.
        class: String,
        /// Terminal-failure rate of the window that tripped the breaker.
        failure_rate: f64,
        /// Admission attempts left before the breaker goes half-open and
        /// admits a probe.
        cooldown_remaining: usize,
    },
    /// This exact request has wedged or panicked its worker too many
    /// times; the supervisor's [`Quarantine`](crate::Quarantine) refuses
    /// it so a poison pill stops burning execution slots. Strikes
    /// survive daemon restarts via the snapshot.
    Quarantined {
        /// The quarantined request name.
        name: String,
        /// Strikes charged when it was refused.
        strikes: usize,
    },
}

impl AdmissionError {
    /// Short display label (outcome-table vocabulary).
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionError::QueueFull { .. } => "queue-full",
            AdmissionError::Shed { .. } => "shed",
            AdmissionError::BreakerOpen { .. } => "breaker-open",
            AdmissionError::Quarantined { .. } => "quarantined",
        }
    }
}

impl core::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdmissionError::QueueFull { priority, depth, capacity } => {
                write!(f, "queue full: {priority} depth {depth} at capacity {capacity}")
            }
            AdmissionError::Shed { priority, pressure } => {
                write!(f, "shed under pressure {pressure:.2} ({priority})")
            }
            AdmissionError::BreakerOpen { class, failure_rate, cooldown_remaining } => write!(
                f,
                "circuit breaker open for class '{class}' \
                 ({:.0}% terminal failures; {cooldown_remaining} attempts to half-open)",
                failure_rate * 100.0
            ),
            AdmissionError::Quarantined { name, strikes } => {
                write!(f, "request '{name}' quarantined after {strikes} worker strikes")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Capacity shape of the bounded intake queue.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Total queued requests allowed, all classes together.
    pub capacity: usize,
    /// Per-priority caps, indexed by [`Priority::index`]. Each class is
    /// additionally bounded by `capacity`; a class cap above `capacity`
    /// simply never binds.
    pub per_priority: [usize; 3],
    /// Nominal per-request service estimate used by the pressure signal
    /// to convert queue depth into expected waiting time (see
    /// [`crate::shed::estimate_pressure`]). A declared constant, not a
    /// wall-clock measurement, so admission decisions are deterministic
    /// for a given batch.
    pub est_service: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            capacity: 64,
            per_priority: [48, 48, 24],
            est_service: Duration::from_millis(100),
        }
    }
}

impl AdmissionConfig {
    /// A practically unbounded configuration — the compatibility shape
    /// behind [`crate::pool::run_batch`], which predates admission
    /// control and must keep accepting everything.
    pub fn unbounded() -> Self {
        AdmissionConfig {
            capacity: usize::MAX / 2,
            per_priority: [usize::MAX / 2; 3],
            est_service: Duration::from_millis(100),
        }
    }
}

/// Depth bookkeeping for the bounded queue: tracks how many requests of
/// each class are queued and enforces both bounds. Purely counting — the
/// actual request storage lives in the pool.
#[derive(Clone, Debug)]
pub struct AdmissionQueue {
    cfg: AdmissionConfig,
    depth: [usize; 3],
}

impl AdmissionQueue {
    /// An empty queue with the given capacity shape.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionQueue { cfg, depth: [0; 3] }
    }

    /// Total queued requests across all classes.
    pub fn depth(&self) -> usize {
        self.depth.iter().sum()
    }

    /// Queued requests of one class.
    pub fn depth_of(&self, priority: Priority) -> usize {
        self.depth[priority.index()]
    }

    /// Queue fill fraction in `[0, 1]` (total depth over total capacity).
    pub fn fill(&self) -> f64 {
        if self.cfg.capacity == 0 {
            1.0
        } else {
            (self.depth() as f64 / self.cfg.capacity as f64).min(1.0)
        }
    }

    /// The capacity shape.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Reserves one slot for `priority`, or refuses with the bound that
    /// was hit.
    ///
    /// # Errors
    /// [`AdmissionError::QueueFull`] when the total capacity or the
    /// class's reservation is exhausted.
    pub fn try_reserve(&mut self, priority: Priority) -> Result<(), AdmissionError> {
        let total = self.depth();
        if total >= self.cfg.capacity {
            return Err(AdmissionError::QueueFull {
                priority,
                depth: total,
                capacity: self.cfg.capacity,
            });
        }
        let i = priority.index();
        if self.depth[i] >= self.cfg.per_priority[i] {
            return Err(AdmissionError::QueueFull {
                priority,
                depth: self.depth[i],
                capacity: self.cfg.per_priority[i],
            });
        }
        self.depth[i] += 1;
        Ok(())
    }

    /// Releases one previously reserved slot (a worker took the request).
    pub fn release(&mut self, priority: Priority) {
        let i = priority.index();
        self.depth[i] = self.depth[i].saturating_sub(1);
    }
}
