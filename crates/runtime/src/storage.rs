//! Storage choke point: one audited trait for every durable byte, a
//! production [`RealStorage`] backend, and a deterministic
//! [`FaultStorage`] that injects storage faults SQLite-test-VFS style.
//!
//! Everything the runtime persists — daemon checkpoints, simulation
//! snapshots, write-ahead trails — flows through the [`Storage`] trait.
//! That gives the durability stack a single seam where faults can be
//! injected deterministically and recovery can be proven, instead of a
//! scatter of `std::fs` calls that are only ever tested on the happy
//! path.
//!
//! [`FaultStorage`] models a power loss the way crash-consistency
//! testers do (the SQLite test VFS, ALICE, CrashMonkey):
//!
//! - **Dirty pages**: written data lives in a volatile page cache until
//!   `fsync` copies it to the durable image. Power loss drops everything
//!   that was never fsynced.
//! - **Volatile directory entries**: `create`, `rename` and `remove`
//!   change the *live* namespace immediately, but the *durable*
//!   namespace only after [`Storage::sync_dir`] on the parent. A crash
//!   before the directory sync reverts the rename — which is exactly
//!   the bug class that makes "write temp + rename" publication unsafe
//!   without a following directory fsync.
//!
//! Faults are scheduled by **global operation index**: every counting
//! operation (create/append/write/fsync/rename/remove/truncate/
//! sync-dir/read) increments one shared counter and is recorded in an
//! op log, so a harness can run a clean pass, read the log, and then
//! re-run with a fault planted at any specific operation. The schedule
//! is a plain map from index to [`Fault`]; there is no randomness
//! inside the storage layer itself.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// How many times a durable append or atomic publish is retried when
/// the backend reports a transient out-of-space condition.
pub const ENOSPC_RETRIES: u32 = 3;

/// Typed error for every operation on a [`Storage`] backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The backend is out of space. Transient by contract: callers with
    /// a retry budget (see [`append_durable`]) may rewind and retry up
    /// to [`ENOSPC_RETRIES`] times before surfacing the error.
    NoSpace {
        /// Operation that hit the condition (`"write"`, `"create"`, …).
        op: &'static str,
        /// Path the operation was addressing.
        path: String,
    },
    /// A simulated power loss happened at or before this operation.
    /// Every subsequent operation fails the same way until the harness
    /// acknowledges the crash via [`FaultStorage::power_loss`].
    Crashed {
        /// Operation that observed the crash.
        op: &'static str,
        /// Path the operation was addressing.
        path: String,
    },
    /// Any other I/O failure, with the backend's message preserved.
    Io {
        /// Operation that failed.
        op: &'static str,
        /// Path the operation was addressing.
        path: String,
        /// Human-readable backend error.
        message: String,
    },
}

impl StorageError {
    /// The operation name carried by the error, for logs and tests.
    pub fn op(&self) -> &'static str {
        match self {
            StorageError::NoSpace { op, .. }
            | StorageError::Crashed { op, .. }
            | StorageError::Io { op, .. } => op,
        }
    }

    /// True if this is the transient out-of-space condition.
    pub fn is_no_space(&self) -> bool {
        matches!(self, StorageError::NoSpace { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSpace { op, path } => {
                write!(f, "storage {op} on {path}: no space left on device")
            }
            StorageError::Crashed { op, path } => {
                write!(f, "storage {op} on {path}: simulated power loss")
            }
            StorageError::Io { op, path, message } => {
                write!(f, "storage {op} on {path}: {message}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// An open writable file handle obtained from a [`Storage`] backend.
///
/// Handles are append-oriented: the runtime only ever creates a file
/// fresh or appends to the end, never seeks into the middle.
pub trait StorageFile: Send {
    /// Append the whole buffer to the file.
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StorageError>;
    /// Flush the file's data to durable media.
    fn fsync(&mut self) -> Result<(), StorageError>;
}

/// The audited choke point for every durable byte.
///
/// The contract mirrors the POSIX subset the durability stack needs —
/// nothing more. All methods take `&self` so one backend can be shared
/// across the pool workers behind an `Arc<dyn Storage>`.
pub trait Storage: fmt::Debug + Send + Sync {
    /// Create (or truncate) a file for writing.
    fn create(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError>;
    /// Open a file for appending, creating it if absent.
    fn append(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError>;
    /// Read the whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>, StorageError>;
    /// Atomically rename `from` to `to`. Durable only after
    /// [`Storage::sync_dir`] on the parent directory.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), StorageError>;
    /// Remove a file.
    fn remove(&self, path: &Path) -> Result<(), StorageError>;
    /// Truncate a file to `len` bytes (used to rewind a partial append
    /// before an ENOSPC retry and to drop a torn final trail record).
    fn truncate(&self, path: &Path, len: u64) -> Result<(), StorageError>;
    /// Fsync a directory so the entries inside it (creates, renames,
    /// removes) survive power loss.
    fn sync_dir(&self, dir: &Path) -> Result<(), StorageError>;
    /// Current length of the file in bytes.
    fn len(&self, path: &Path) -> Result<u64, StorageError>;
    /// Whether the path currently exists (live view).
    fn exists(&self, path: &Path) -> bool;
    /// Create the directory and all missing parents.
    fn create_dir_all(&self, dir: &Path) -> Result<(), StorageError>;
}

fn map_io(op: &'static str, path: &Path, err: std::io::Error) -> StorageError {
    let path = path.display().to_string();
    // ENOSPC by raw errno: `ErrorKind::StorageFull` is not stable on
    // every toolchain this builds with.
    if err.raw_os_error() == Some(28) {
        StorageError::NoSpace { op, path }
    } else {
        StorageError::Io { op, path, message: err.to_string() }
    }
}

// ---------------------------------------------------------------------
// RealStorage
// ---------------------------------------------------------------------

/// Production backend: thin mapping onto `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealStorage;

struct RealFile {
    file: fs::File,
    path: PathBuf,
}

impl StorageFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StorageError> {
        self.file.write_all(buf).map_err(|e| map_io("write", &self.path, e))
    }

    fn fsync(&mut self) -> Result<(), StorageError> {
        self.file.sync_all().map_err(|e| map_io("fsync", &self.path, e))
    }
}

impl Storage for RealStorage {
    fn create(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError> {
        let file = fs::File::create(path).map_err(|e| map_io("create", path, e))?;
        Ok(Box::new(RealFile { file, path: path.to_path_buf() }))
    }

    fn append(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| map_io("append", path, e))?;
        Ok(Box::new(RealFile { file, path: path.to_path_buf() }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StorageError> {
        fs::read(path).map_err(|e| map_io("read", path, e))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StorageError> {
        fs::rename(from, to).map_err(|e| map_io("rename", from, e))
    }

    fn remove(&self, path: &Path) -> Result<(), StorageError> {
        fs::remove_file(path).map_err(|e| map_io("remove", path, e))
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<(), StorageError> {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| map_io("truncate", path, e))?;
        file.set_len(len).map_err(|e| map_io("truncate", path, e))?;
        file.sync_all().map_err(|e| map_io("truncate", path, e))?;
        // Double-check the rewind actually happened before the caller
        // re-appends: a silent partial truncate would corrupt the log.
        let mut f = fs::File::open(path).map_err(|e| map_io("truncate", path, e))?;
        let end = f.seek(SeekFrom::End(0)).map_err(|e| map_io("truncate", path, e))?;
        if end != len {
            return Err(StorageError::Io {
                op: "truncate",
                path: path.display().to_string(),
                message: format!("expected length {len}, found {end}"),
            });
        }
        let mut sink = Vec::new();
        drop(f.read_to_end(&mut sink));
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), StorageError> {
        let handle = fs::File::open(dir).map_err(|e| map_io("sync-dir", dir, e))?;
        handle.sync_all().map_err(|e| map_io("sync-dir", dir, e))
    }

    fn len(&self, path: &Path) -> Result<u64, StorageError> {
        fs::metadata(path).map(|m| m.len()).map_err(|e| map_io("len", path, e))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, dir: &Path) -> Result<(), StorageError> {
        fs::create_dir_all(dir).map_err(|e| map_io("create-dir", dir, e))
    }
}

// ---------------------------------------------------------------------
// FaultStorage
// ---------------------------------------------------------------------

/// A storage fault to inject at a scheduled operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Power loss at this operation: the op fails, every later op fails
    /// the same way, and all un-fsynced data plus all un-synced
    /// directory entries are dropped when [`FaultStorage::power_loss`]
    /// applies the dirty-page model.
    Crash,
    /// Torn write: only the first half of the buffer reaches the file,
    /// the partial data is forced durable (background writeback), and
    /// the machine loses power. Fires on `write` operations.
    TornWrite,
    /// `fsync` returns an error and the dirty pages are dropped —
    /// after a failed fsync nothing about the file's durable state can
    /// be trusted. Fires on `fsync` operations.
    FsyncFail,
    /// `fsync` returns `Ok` but persists nothing — the lying-fsync
    /// failure mode. Fires on `fsync` operations.
    SilentFsyncLoss,
    /// The next `count` write operations fail with out-of-space, then
    /// the condition clears (a transient burst a bounded retry should
    /// absorb). Fires on `write` operations.
    NoSpace {
        /// How many consecutive write operations report ENOSPC.
        count: u32,
    },
    /// The read returns the stored bytes with one bit flipped; the
    /// media itself stays intact (a transient controller/DMA error).
    /// Fires on `read` operations.
    CorruptRead {
        /// Which bit of the returned buffer to flip (taken modulo the
        /// buffer's bit length).
        bit: u64,
    },
}

/// Kind of a counting storage operation, as recorded in the op log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `create` — open a file fresh for writing.
    Create,
    /// `append` — open a file for appending.
    Append,
    /// `write` — append a buffer through an open handle.
    Write,
    /// `fsync` — flush an open handle to durable media.
    Fsync,
    /// `rename` — atomically rename a file.
    Rename,
    /// `remove` — delete a file.
    Remove,
    /// `truncate` — cut a file to a given length.
    Truncate,
    /// `sync-dir` — fsync a directory's entries.
    SyncDir,
    /// `read` — read a whole file back.
    Read,
}

impl OpKind {
    /// Stable lowercase label (used in logs and coverage keys).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::Append => "append",
            OpKind::Write => "write",
            OpKind::Fsync => "fsync",
            OpKind::Rename => "rename",
            OpKind::Remove => "remove",
            OpKind::Truncate => "truncate",
            OpKind::SyncDir => "sync-dir",
            OpKind::Read => "read",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One entry of the [`FaultStorage`] operation log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Global operation index (the key fault schedules use).
    pub index: u64,
    /// What kind of operation it was.
    pub kind: OpKind,
    /// The path it addressed.
    pub path: PathBuf,
}

#[derive(Debug, Clone, Default)]
struct Inode {
    /// Volatile page-cache view: what reads observe.
    live: Vec<u8>,
    /// What survives power loss: the image as of the last real fsync
    /// (or forced writeback in the torn-write fault).
    synced: Vec<u8>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Live namespace: path → inode id.
    live: BTreeMap<PathBuf, usize>,
    /// Durable namespace: the entries a crash preserves. Updated only
    /// by `sync_dir`, so un-synced creates/renames/removes revert.
    durable: BTreeMap<PathBuf, usize>,
    inodes: Vec<Inode>,
    ops: u64,
    log: Vec<OpRecord>,
    schedule: BTreeMap<u64, Fault>,
    crashed: bool,
    enospc_left: u32,
    fired: BTreeMap<String, u64>,
}

impl Inner {
    fn bump_fired(&mut self, key: &str) {
        *self.fired.entry(key.to_string()).or_insert(0) += 1;
    }

    /// Count the operation, log it, and return the fault (if any)
    /// scheduled for exactly this index.
    fn tick(&mut self, kind: OpKind, path: &Path) -> Option<Fault> {
        let index = self.ops;
        self.ops += 1;
        self.log.push(OpRecord { index, kind, path: to_key(path) });
        self.schedule.get(&index).copied()
    }

    fn inode_of(&mut self, path: &Path) -> Option<usize> {
        self.live.get(&to_key(path)).copied()
    }

    fn fresh_inode(&mut self) -> usize {
        self.inodes.push(Inode::default());
        self.inodes.len() - 1
    }

    fn apply_power_loss(&mut self) {
        self.live = self.durable.clone();
        for inode in &mut self.inodes {
            inode.live = inode.synced.clone();
        }
        self.crashed = false;
        self.enospc_left = 0;
    }
}

/// Normalise a path into the map key space. The model treats paths as
/// opaque names; only `parent()` relationships matter (for `sync_dir`).
fn to_key(path: &Path) -> PathBuf {
    path.to_path_buf()
}

/// Deterministic fault-injecting in-memory backend.
///
/// Clones share the same underlying state, so a test harness can keep
/// one handle for scheduling faults and inspection while the system
/// under test owns another behind `Arc<dyn Storage>`.
#[derive(Clone, Default)]
pub struct FaultStorage {
    inner: Arc<Mutex<Inner>>,
}

impl fmt::Debug for FaultStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("FaultStorage")
            .field("files", &inner.live.len())
            .field("ops", &inner.ops)
            .field("crashed", &inner.crashed)
            .field("scheduled", &inner.schedule.len())
            .finish()
    }
}

impl FaultStorage {
    /// A pristine, empty, fault-free storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the shared state, recovering from poisoning: a panicking
    /// holder (a quarantined worker mid-operation) must not cascade into
    /// aborting every other thread that touches storage. The state is a
    /// plain map; a poisoned guard is still internally consistent.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Plant `fault` at global operation index `index`.
    pub fn schedule(&self, index: u64, fault: Fault) {
        self.lock().schedule.insert(index, fault);
    }

    /// Number of counting operations performed so far.
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// The full operation log (index, kind, path) so far.
    pub fn op_log(&self) -> Vec<OpRecord> {
        self.lock().log.clone()
    }

    /// Which fault classes fired, and how often. Keys: `torn-write`,
    /// `fsync-fail`, `silent-fsync-loss`, `enospc`, `read-corruption`,
    /// `crash`, plus `crash@<op>` for the op kind the crash landed on.
    pub fn fired(&self) -> BTreeMap<String, u64> {
        self.lock().fired.clone()
    }

    /// True once a scheduled crash (or torn write) has taken the
    /// storage down; every counting operation fails until
    /// [`FaultStorage::power_loss`] is called.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Apply the dirty-page power-loss model and bring the storage
    /// back up: the live namespace reverts to the durable namespace
    /// (dropping un-synced creates/renames/removes) and every file's
    /// content reverts to its last-fsynced image.
    pub fn power_loss(&self) {
        self.lock().apply_power_loss();
    }

    /// Non-counting read of the live content of `path`, for harness
    /// validation (never intercepted by scheduled faults).
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        let inner = self.lock();
        inner.live.get(&to_key(path)).map(|&id| inner.inodes[id].live.clone())
    }

    /// Non-counting read of the durable (post-crash) content of `path`.
    pub fn peek_durable(&self, path: &Path) -> Option<Vec<u8>> {
        let inner = self.lock();
        inner.durable.get(&to_key(path)).map(|&id| inner.inodes[id].synced.clone())
    }

    /// All paths currently present in the live namespace.
    pub fn live_paths(&self) -> Vec<PathBuf> {
        self.lock().live.keys().cloned().collect()
    }

    fn guard(inner: &Inner, op: &'static str, path: &Path) -> Result<(), StorageError> {
        if inner.crashed {
            Err(StorageError::Crashed { op, path: path.display().to_string() })
        } else {
            Ok(())
        }
    }
}

struct FaultFile {
    inner: Arc<Mutex<Inner>>,
    path: PathBuf,
    inode: usize,
}

impl StorageFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<(), StorageError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        FaultStorage::guard(&inner, "write", &self.path)?;
        let fault = inner.tick(OpKind::Write, &self.path);
        if inner.enospc_left > 0 {
            inner.enospc_left -= 1;
            inner.bump_fired("enospc");
            return Err(StorageError::NoSpace {
                op: "write",
                path: self.path.display().to_string(),
            });
        }
        match fault {
            Some(Fault::Crash) => {
                inner.crashed = true;
                inner.bump_fired("crash");
                inner.bump_fired("crash@write");
                return Err(StorageError::Crashed {
                    op: "write",
                    path: self.path.display().to_string(),
                });
            }
            Some(Fault::TornWrite) => {
                // Half the buffer lands, background writeback forces it
                // durable (entry included), then the power goes out.
                let half = &buf[..buf.len() / 2];
                inner.inodes[self.inode].live.extend_from_slice(half);
                let image = inner.inodes[self.inode].live.clone();
                inner.inodes[self.inode].synced = image;
                let key = to_key(&self.path);
                inner.durable.insert(key, self.inode);
                inner.crashed = true;
                inner.bump_fired("torn-write");
                return Err(StorageError::Crashed {
                    op: "write",
                    path: self.path.display().to_string(),
                });
            }
            Some(Fault::NoSpace { count }) => {
                inner.enospc_left = count.saturating_sub(1);
                inner.bump_fired("enospc");
                return Err(StorageError::NoSpace {
                    op: "write",
                    path: self.path.display().to_string(),
                });
            }
            _ => {}
        }
        inner.inodes[self.inode].live.extend_from_slice(buf);
        Ok(())
    }

    fn fsync(&mut self) -> Result<(), StorageError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        FaultStorage::guard(&inner, "fsync", &self.path)?;
        let fault = inner.tick(OpKind::Fsync, &self.path);
        match fault {
            Some(Fault::Crash) => {
                inner.crashed = true;
                inner.bump_fired("crash");
                inner.bump_fired("crash@fsync");
                return Err(StorageError::Crashed {
                    op: "fsync",
                    path: self.path.display().to_string(),
                });
            }
            Some(Fault::FsyncFail) => {
                // After a failed fsync the page cache cannot be
                // trusted: drop the dirty pages (Postgres fsync-gate
                // semantics) and report the failure.
                let synced = inner.inodes[self.inode].synced.clone();
                inner.inodes[self.inode].live = synced;
                inner.bump_fired("fsync-fail");
                return Err(StorageError::Io {
                    op: "fsync",
                    path: self.path.display().to_string(),
                    message: "fsync failed (injected)".into(),
                });
            }
            Some(Fault::SilentFsyncLoss) => {
                // Lying fsync: report success, persist nothing.
                inner.bump_fired("silent-fsync-loss");
                return Ok(());
            }
            _ => {}
        }
        let image = inner.inodes[self.inode].live.clone();
        inner.inodes[self.inode].synced = image;
        Ok(())
    }
}

impl Storage for FaultStorage {
    fn create(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError> {
        let mut inner = self.lock();
        FaultStorage::guard(&inner, "create", path)?;
        let fault = inner.tick(OpKind::Create, path);
        if let Some(Fault::Crash) = fault {
            inner.crashed = true;
            inner.bump_fired("crash");
            inner.bump_fired("crash@create");
            return Err(StorageError::Crashed { op: "create", path: path.display().to_string() });
        }
        let inode = inner.fresh_inode();
        inner.live.insert(to_key(path), inode);
        Ok(Box::new(FaultFile { inner: Arc::clone(&self.inner), path: path.to_path_buf(), inode }))
    }

    fn append(&self, path: &Path) -> Result<Box<dyn StorageFile>, StorageError> {
        let mut inner = self.lock();
        FaultStorage::guard(&inner, "append", path)?;
        let fault = inner.tick(OpKind::Append, path);
        if let Some(Fault::Crash) = fault {
            inner.crashed = true;
            inner.bump_fired("crash");
            inner.bump_fired("crash@append");
            return Err(StorageError::Crashed { op: "append", path: path.display().to_string() });
        }
        let inode = match inner.inode_of(path) {
            Some(id) => id,
            None => {
                let id = inner.fresh_inode();
                inner.live.insert(to_key(path), id);
                id
            }
        };
        Ok(Box::new(FaultFile { inner: Arc::clone(&self.inner), path: path.to_path_buf(), inode }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StorageError> {
        let mut inner = self.lock();
        FaultStorage::guard(&inner, "read", path)?;
        let fault = inner.tick(OpKind::Read, path);
        if let Some(Fault::Crash) = fault {
            inner.crashed = true;
            inner.bump_fired("crash");
            inner.bump_fired("crash@read");
            return Err(StorageError::Crashed { op: "read", path: path.display().to_string() });
        }
        let Some(id) = inner.inode_of(path) else {
            return Err(StorageError::Io {
                op: "read",
                path: path.display().to_string(),
                message: "no such file".into(),
            });
        };
        let mut bytes = inner.inodes[id].live.clone();
        if let Some(Fault::CorruptRead { bit }) = fault {
            if !bytes.is_empty() {
                let bit = bit % (bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                inner.bump_fired("read-corruption");
            }
        }
        Ok(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StorageError> {
        let mut inner = self.lock();
        FaultStorage::guard(&inner, "rename", from)?;
        let fault = inner.tick(OpKind::Rename, from);
        if let Some(Fault::Crash) = fault {
            inner.crashed = true;
            inner.bump_fired("crash");
            inner.bump_fired("crash@rename");
            return Err(StorageError::Crashed { op: "rename", path: from.display().to_string() });
        }
        let Some(id) = inner.live.remove(&to_key(from)) else {
            return Err(StorageError::Io {
                op: "rename",
                path: from.display().to_string(),
                message: "no such file".into(),
            });
        };
        inner.live.insert(to_key(to), id);
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<(), StorageError> {
        let mut inner = self.lock();
        FaultStorage::guard(&inner, "remove", path)?;
        let fault = inner.tick(OpKind::Remove, path);
        if let Some(Fault::Crash) = fault {
            inner.crashed = true;
            inner.bump_fired("crash");
            inner.bump_fired("crash@remove");
            return Err(StorageError::Crashed { op: "remove", path: path.display().to_string() });
        }
        if inner.live.remove(&to_key(path)).is_none() {
            return Err(StorageError::Io {
                op: "remove",
                path: path.display().to_string(),
                message: "no such file".into(),
            });
        }
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> Result<(), StorageError> {
        let mut inner = self.lock();
        FaultStorage::guard(&inner, "truncate", path)?;
        let fault = inner.tick(OpKind::Truncate, path);
        if let Some(Fault::Crash) = fault {
            inner.crashed = true;
            inner.bump_fired("crash");
            inner.bump_fired("crash@truncate");
            return Err(StorageError::Crashed { op: "truncate", path: path.display().to_string() });
        }
        let Some(id) = inner.inode_of(path) else {
            return Err(StorageError::Io {
                op: "truncate",
                path: path.display().to_string(),
                message: "no such file".into(),
            });
        };
        inner.inodes[id].live.truncate(len as usize);
        // Model the metadata-journalled truncate as durable: the synced
        // image shrinks too (a grown synced image past the truncation
        // point cannot survive).
        inner.inodes[id].synced.truncate(len as usize);
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), StorageError> {
        let mut inner = self.lock();
        FaultStorage::guard(&inner, "sync-dir", dir)?;
        let fault = inner.tick(OpKind::SyncDir, dir);
        if let Some(Fault::Crash) = fault {
            inner.crashed = true;
            inner.bump_fired("crash");
            inner.bump_fired("crash@sync-dir");
            return Err(StorageError::Crashed { op: "sync-dir", path: dir.display().to_string() });
        }
        // Durable entries directly under `dir` become exactly the live
        // entries: creates and rename targets persist, removed and
        // renamed-away names disappear.
        let dir_key = to_key(dir);
        inner.durable.retain(|p, _| p.parent().map(to_key).as_ref() != Some(&dir_key));
        let adds: Vec<(PathBuf, usize)> = inner
            .live
            .iter()
            .filter(|(p, _)| p.parent().map(to_key).as_ref() == Some(&dir_key))
            .map(|(p, &id)| (p.clone(), id))
            .collect();
        for (p, id) in adds {
            inner.durable.insert(p, id);
        }
        Ok(())
    }

    fn len(&self, path: &Path) -> Result<u64, StorageError> {
        let inner = self.lock();
        match inner.live.get(&to_key(path)) {
            Some(&id) => Ok(inner.inodes[id].live.len() as u64),
            None => Err(StorageError::Io {
                op: "len",
                path: path.display().to_string(),
                message: "no such file".into(),
            }),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().live.contains_key(&to_key(path))
    }

    fn create_dir_all(&self, _dir: &Path) -> Result<(), StorageError> {
        // Directories are implicit in the in-memory namespace.
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Durable append helper
// ---------------------------------------------------------------------

/// Append `bytes` to `path` and fsync, with the bounded-retry rung for
/// transient ENOSPC: on out-of-space the partial append is rewound by
/// truncating back to the pre-append length and the whole
/// open→write→fsync sequence retries, up to [`ENOSPC_RETRIES`] times.
/// If the file did not exist before the call, its parent directory is
/// fsynced after the first successful append so the new entry survives
/// power loss.
pub fn append_durable(
    storage: &dyn Storage,
    path: &Path,
    bytes: &[u8],
) -> Result<(), StorageError> {
    let created = !storage.exists(path);
    let base_len = if created { 0 } else { storage.len(path)? };
    let mut attempt = 0u32;
    loop {
        let result = (|| {
            let mut file = storage.append(path)?;
            file.write_all(bytes)?;
            file.fsync()
        })();
        match result {
            Ok(()) => break,
            Err(err) if err.is_no_space() && attempt < ENOSPC_RETRIES => {
                attempt += 1;
                if storage.exists(path) {
                    storage.truncate(path, base_len)?;
                }
            }
            Err(err) => return Err(err),
        }
    }
    if created {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                storage.sync_dir(parent)?;
            }
        }
    }
    Ok(())
}
