//! Bounded event trails.
//!
//! A long-running daemon accumulates evidence — ladder attempts, repair
//! events, breaker transitions, cache decisions — and every one of those
//! trails used to be an unbounded `Vec`: a slow memory leak in any
//! process that serves requests for days. [`Ring`] is the fix: a
//! fixed-capacity trail that keeps the *most recent* entries, counts
//! what it evicted, and dereferences to a slice so every existing
//! consumer (indexing, slicing, iteration) keeps working unchanged.

use std::ops::Deref;

/// A bounded, append-only event trail that evicts its oldest entries
/// once `capacity` is reached. Unlike a classic ring buffer it keeps its
/// live window contiguous (`Deref<Target = [T]>`), trading an `O(n)`
/// shift on eviction — irrelevant at trail capacities of tens to
/// hundreds — for zero-cost reads everywhere else.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    buf: Vec<T>,
    capacity: usize,
    evicted: usize,
}

impl<T> Ring<T> {
    /// Default trail capacity, used by `Default` and the report types.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// An empty trail keeping at most `capacity` entries (clamped to at
    /// least 1 — a zero-capacity trail would silently drop everything).
    pub fn new(capacity: usize) -> Self {
        Ring { buf: Vec::new(), capacity: capacity.max(1), evicted: 0 }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted so far to honor the bound.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Total entries ever pushed (live + evicted).
    pub fn total(&self) -> usize {
        self.buf.len() + self.evicted
    }

    /// Appends one entry, evicting the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() >= self.capacity {
            self.buf.remove(0);
            self.evicted += 1;
        }
        self.buf.push(item);
    }

    /// Appends every entry of `items` in order.
    pub fn extend(&mut self, items: impl IntoIterator<Item = T>) {
        for item in items {
            self.push(item);
        }
    }

    /// Drops every live entry (the eviction count is kept — it is part
    /// of the trail's history, not its contents).
    pub fn clear(&mut self) {
        self.evicted += self.buf.len();
        self.buf.clear();
    }
}

impl<T> Default for Ring<T> {
    fn default() -> Self {
        Ring::new(Self::DEFAULT_CAPACITY)
    }
}

impl<T> Deref for Ring<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.buf
    }
}

impl<'a, T> IntoIterator for &'a Ring<T> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}
