//! Crash-safe checkpoint/restore of daemon state.
//!
//! A [`DaemonSnapshot`] persists everything the pool needs to make
//! **identical admission and breaker decisions** after a restart: the
//! sequence cursor, the [`ServeCounters`], every circuit breaker's full
//! state (window, trip count, cooldown position — the jitter stream
//! position rides on the trip count, so replayed cooldowns land on the
//! same jittered targets), quarantine strikes, and the hierarchy-cache
//! metadata (entries restore *cold* — identity and counters, not
//! matrices).
//!
//! The format is deliberately primitive — a versioned line-oriented
//! text file, one record per line — because the failure mode that
//! matters is a daemon killed **mid-write**:
//!
//! * floats are serialized as their IEEE-754 bit patterns in hex, so a
//!   read-back is bit-identical (no decimal round-trip);
//! * strings are percent-escaped so class names can never smuggle a
//!   delimiter;
//! * the final line carries an FNV-1a checksum over everything before
//!   it; a torn or corrupted file fails with a typed
//!   [`SnapshotError`] instead of restoring garbage;
//! * writes go to a temp file in the same directory followed by an
//!   atomic rename **and a parent-directory fsync** — without the
//!   directory sync the rename itself is not durable across power
//!   loss — so the published path always holds either the old snapshot
//!   or the new one, never a tear;
//! * publication rotates between two generation slots (see
//!   [`SnapshotStore`]): a crash while publishing generation *n* can at
//!   worst tear the slot holding generation *n − 2*, never the newest
//!   good snapshot, and recovery quarantines undecodable slots and
//!   falls back to the previous good generation.
//!
//! Every byte flows through the [`Storage`](crate::storage::Storage)
//! choke point, so the whole path is exercised under deterministic
//! fault injection (`repro torture`).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use fp16mg_fp::Fnv1a;

use crate::storage::{RealStorage, Storage, StorageError, ENOSPC_RETRIES};

use crate::breaker::{BreakerExport, BreakerState};
use crate::cache::{CacheEntryMeta, CacheKey, CacheStats};
use crate::pool::{PoolState, ServeCounters};

/// Snapshot format version understood by this build.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic token opening every daemon snapshot file.
const MAGIC: &str = "fp16mg-snapshot";

/// Magic token opening every simulation snapshot file.
const SIM_MAGIC: &str = "fp16mg-sim-snapshot";

/// Why a snapshot could not be written or restored.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io {
        /// The operation that failed (`"create"`, `"rename"`, ...).
        op: &'static str,
        /// The OS error message.
        message: String,
    },
    /// The file does not start with the snapshot magic — not a
    /// snapshot (or the header itself was torn).
    BadMagic {
        /// What the first line actually held.
        found: String,
    },
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
    },
    /// The checksum trailer does not match the body — corruption.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum recomputed over the body.
        actual: u64,
    },
    /// The file ends without a checksum trailer — a torn write.
    Truncated,
    /// A record line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { op, message } => write!(f, "snapshot {op} failed: {message}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot file (first line {found:?})")
            }
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (this build reads v{SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: recorded {expected:016x}, recomputed {actual:016x}"
            ),
            SnapshotError::Truncated => {
                write!(f, "snapshot truncated: no checksum trailer (torn write)")
            }
            SnapshotError::Parse { line, message } => {
                write!(f, "snapshot parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The complete durable state of a [`Daemon`](crate::Daemon).
#[derive(Clone, Debug, PartialEq)]
pub struct DaemonSnapshot {
    /// Requests acknowledged (outcomes returned) over the daemon's
    /// lifetime; the replay cursor after a crash.
    pub seq: u64,
    /// The pool's exported decision state.
    pub state: PoolState,
}

// ---------------------------------------------------------------------
// escaping and primitive encoding

/// Percent-escapes anything outside `[A-Za-z0-9_.-]` so class names
/// can never contain a field or line delimiter.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    if out.is_empty() {
        out.push_str("%00");
    }
    out
}

fn unesc(s: &str, line: usize) -> Result<String, SnapshotError> {
    let parse = |m: String| SnapshotError::Parse { line, message: m };
    let mut bytes = Vec::with_capacity(s.len());
    let raw = s.as_bytes();
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == b'%' {
            let hex =
                raw.get(i + 1..i + 3).ok_or_else(|| parse(format!("dangling escape in {s:?}")))?;
            let hex =
                std::str::from_utf8(hex).map_err(|_| parse(format!("bad escape in {s:?}")))?;
            let b = u8::from_str_radix(hex, 16)
                .map_err(|_| parse(format!("bad escape %{hex} in {s:?}")))?;
            bytes.push(b);
            i += 3;
        } else {
            bytes.push(raw[i]);
            i += 1;
        }
    }
    if bytes == [0u8] {
        bytes.clear();
    }
    String::from_utf8(bytes).map_err(|_| parse(format!("escaped string {s:?} is not UTF-8")))
}

fn state_label(s: BreakerState) -> &'static str {
    match s {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

fn parse_state(s: &str, line: usize) -> Result<BreakerState, SnapshotError> {
    match s {
        "closed" => Ok(BreakerState::Closed),
        "open" => Ok(BreakerState::Open),
        "half-open" => Ok(BreakerState::HalfOpen),
        other => {
            Err(SnapshotError::Parse { line, message: format!("unknown breaker state {other:?}") })
        }
    }
}

/// Pulls the next whitespace token off a record line.
fn tok<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    line: usize,
    what: &str,
) -> Result<&'a str, SnapshotError> {
    it.next()
        .ok_or_else(|| SnapshotError::Parse { line, message: format!("missing field: {what}") })
}

fn p_u64(s: &str, line: usize, what: &str) -> Result<u64, SnapshotError> {
    s.parse::<u64>()
        .map_err(|_| SnapshotError::Parse { line, message: format!("bad {what}: {s:?}") })
}

fn p_usize(s: &str, line: usize, what: &str) -> Result<usize, SnapshotError> {
    s.parse::<usize>()
        .map_err(|_| SnapshotError::Parse { line, message: format!("bad {what}: {s:?}") })
}

/// f64 as its IEEE-754 bit pattern — bit-identical round trip.
fn p_f64_bits(s: &str, line: usize, what: &str) -> Result<f64, SnapshotError> {
    u64::from_str_radix(s, 16).map(f64::from_bits).map_err(|_| SnapshotError::Parse {
        line,
        message: format!("bad {what} bit pattern: {s:?}"),
    })
}

fn p_hex_u64(s: &str, line: usize, what: &str) -> Result<u64, SnapshotError> {
    u64::from_str_radix(s, 16)
        .map_err(|_| SnapshotError::Parse { line, message: format!("bad {what}: {s:?}") })
}

fn checksum_of(body: &str) -> u64 {
    let mut h = Fnv1a::new();
    for b in body.bytes() {
        h.write_u8(b);
    }
    h.finish()
}

/// Validates the common snapshot frame — magic header, version,
/// checksum trailer — and returns the checksummed body (header line
/// included).
fn frame_body<'a>(text: &'a str, magic: &str) -> Result<&'a str, SnapshotError> {
    // Locate the trailer first: everything before it is the
    // checksummed body.
    let trailer_at = text.trim_end_matches('\n').rfind('\n').map(|i| i + 1).unwrap_or(0);
    let trailer = text[trailer_at..].trim_end();
    let Some(sum_hex) = trailer.strip_prefix("checksum ") else {
        // Distinguish "not a snapshot at all" from "snapshot torn
        // before the trailer" by checking the magic up front.
        if !text.starts_with(magic) {
            let found = text.lines().next().unwrap_or("").to_string();
            return Err(SnapshotError::BadMagic { found });
        }
        return Err(SnapshotError::Truncated);
    };
    let body = &text[..trailer_at];
    let trailer_line = body.lines().count() + 1;
    let expected = p_hex_u64(sum_hex, trailer_line, "checksum")?;
    let actual = checksum_of(body);
    if expected != actual {
        return Err(SnapshotError::ChecksumMismatch { expected, actual });
    }
    let header = body.lines().next().ok_or(SnapshotError::Truncated)?;
    let Some(version) = header.strip_prefix(magic).and_then(|r| r.trim().strip_prefix('v')) else {
        return Err(SnapshotError::BadMagic { found: header.to_string() });
    };
    let version: u32 = version.trim().parse().map_err(|_| SnapshotError::Parse {
        line: 1,
        message: format!("bad version in header {header:?}"),
    })?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    Ok(body)
}

/// Maps a [`StorageError`] into the snapshot error space, preserving
/// the failing operation.
fn storage_io(err: StorageError) -> SnapshotError {
    SnapshotError::Io { op: err.op(), message: err.to_string() }
}

/// Writes snapshot text atomically through a [`Storage`] backend: temp
/// file in the target's directory, write, fsync, rename over the final
/// path, then **fsync the parent directory** so the rename survives
/// power loss. A transient out-of-space failure anywhere in the
/// sequence rewinds (removing the temp file) and retries the whole
/// publication up to [`ENOSPC_RETRIES`] times.
fn write_atomic_with(storage: &dyn Storage, path: &Path, text: &str) -> Result<(), SnapshotError> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    if let Some(dir) = dir {
        storage.create_dir_all(dir).map_err(storage_io)?;
    }
    let mut tmp = path.to_path_buf();
    let mut name = tmp.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    tmp.set_file_name(name);
    let mut attempt = 0u32;
    loop {
        let result: Result<(), StorageError> = (|| {
            let mut file = storage.create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.fsync()?;
            drop(file);
            storage.rename(&tmp, path)?;
            if let Some(dir) = dir {
                storage.sync_dir(dir)?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => return Ok(()),
            Err(err) if err.is_no_space() && attempt < ENOSPC_RETRIES => {
                attempt += 1;
                if storage.exists(&tmp) {
                    let _ = storage.remove(&tmp);
                }
            }
            Err(err) => return Err(storage_io(err)),
        }
    }
}

/// [`write_atomic_with`] on the production backend.
fn write_atomic(path: &Path, text: &str) -> Result<(), SnapshotError> {
    write_atomic_with(&RealStorage, path, text)
}

// ---------------------------------------------------------------------

impl DaemonSnapshot {
    /// Serializes to the versioned text format, checksum trailer
    /// included.
    pub fn encode(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!("{MAGIC} v{SNAPSHOT_VERSION}\n"));
        body.push_str(&format!("seq {}\n", self.seq));
        let c = &self.state.counters;
        body.push_str(&format!(
            "counters {} {} {} {} {} {} {} {} {}\n",
            c.submitted,
            c.admitted,
            c.rejected_queue_full,
            c.rejected_shed,
            c.rejected_breaker,
            c.rejected_quarantined,
            c.degraded,
            c.completed_ok,
            c.completed_err,
        ));
        for (class, e) in &self.state.breakers {
            let window: String = if e.window.is_empty() {
                "-".to_string()
            } else {
                e.window.iter().map(|&f| if f { '1' } else { '0' }).collect()
            };
            body.push_str(&format!(
                "breaker {} {} {} {} {:016x} {} {} {} {}\n",
                esc(class),
                state_label(e.state),
                window,
                e.trips,
                e.last_failure_rate.to_bits(),
                e.attempts_while_open,
                e.cooldown_target,
                e.probes_outstanding,
                e.probe_successes_seen,
            ));
        }
        for (name, strikes) in &self.state.quarantine {
            body.push_str(&format!("quarantine {} {strikes}\n", esc(name)));
        }
        let s = &self.state.cache_stats;
        body.push_str(&format!(
            "cache-stats {} {} {} {} {}\n",
            s.hits, s.rescaled_hits, s.drift_invalidations, s.rebuilds, s.evictions,
        ));
        for m in &self.state.cache_entries {
            let k = &m.key;
            body.push_str(&format!(
                "cache-entry {} {} {} {} {} {} {:016x} {} {} {}\n",
                esc(&k.class),
                k.dims.0,
                k.dims.1,
                k.dims.2,
                k.components,
                k.taps,
                m.fingerprint,
                m.hits,
                m.rescaled_hits,
                m.builds,
            ));
        }
        let sum = checksum_of(&body);
        format!("{body}checksum {sum:016x}\n")
    }

    /// Parses the text format, verifying magic, version, and checksum.
    ///
    /// # Errors
    /// Typed [`SnapshotError`] on any structural problem; a file with
    /// no checksum trailer is [`SnapshotError::Truncated`] (the torn
    /// write signature).
    pub fn decode(text: &str) -> Result<Self, SnapshotError> {
        let body = frame_body(text, MAGIC)?;
        let mut lines = body.lines().enumerate();
        lines.next(); // header, already validated

        let mut seq = 0u64;
        let mut counters = ServeCounters::default();
        let mut breakers: Vec<(String, BreakerExport)> = Vec::new();
        let mut quarantine: Vec<(String, usize)> = Vec::new();
        let mut cache_stats = CacheStats::default();
        let mut cache_entries: Vec<CacheEntryMeta> = Vec::new();

        for (idx, raw) in lines {
            let ln = idx + 1;
            let mut f = raw.split_whitespace();
            let record = tok(&mut f, ln, "record tag")?;
            match record {
                "seq" => {
                    seq = p_u64(tok(&mut f, ln, "seq")?, ln, "seq")?;
                }
                "counters" => {
                    counters = ServeCounters {
                        submitted: p_u64(tok(&mut f, ln, "submitted")?, ln, "submitted")?,
                        admitted: p_u64(tok(&mut f, ln, "admitted")?, ln, "admitted")?,
                        rejected_queue_full: p_u64(
                            tok(&mut f, ln, "rejected_queue_full")?,
                            ln,
                            "rejected_queue_full",
                        )?,
                        rejected_shed: p_u64(
                            tok(&mut f, ln, "rejected_shed")?,
                            ln,
                            "rejected_shed",
                        )?,
                        rejected_breaker: p_u64(
                            tok(&mut f, ln, "rejected_breaker")?,
                            ln,
                            "rejected_breaker",
                        )?,
                        rejected_quarantined: p_u64(
                            tok(&mut f, ln, "rejected_quarantined")?,
                            ln,
                            "rejected_quarantined",
                        )?,
                        degraded: p_u64(tok(&mut f, ln, "degraded")?, ln, "degraded")?,
                        completed_ok: p_u64(tok(&mut f, ln, "completed_ok")?, ln, "completed_ok")?,
                        completed_err: p_u64(
                            tok(&mut f, ln, "completed_err")?,
                            ln,
                            "completed_err",
                        )?,
                    };
                }
                "breaker" => {
                    let class = unesc(tok(&mut f, ln, "class")?, ln)?;
                    let state = parse_state(tok(&mut f, ln, "state")?, ln)?;
                    let wtok = tok(&mut f, ln, "window")?;
                    let window: Vec<bool> = if wtok == "-" {
                        Vec::new()
                    } else {
                        wtok.chars()
                            .map(|ch| match ch {
                                '0' => Ok(false),
                                '1' => Ok(true),
                                other => Err(SnapshotError::Parse {
                                    line: ln,
                                    message: format!("bad window bit {other:?}"),
                                }),
                            })
                            .collect::<Result<_, _>>()?
                    };
                    let export = BreakerExport {
                        state,
                        window,
                        trips: p_usize(tok(&mut f, ln, "trips")?, ln, "trips")?,
                        last_failure_rate: p_f64_bits(
                            tok(&mut f, ln, "last_failure_rate")?,
                            ln,
                            "last_failure_rate",
                        )?,
                        attempts_while_open: p_usize(
                            tok(&mut f, ln, "attempts_while_open")?,
                            ln,
                            "attempts_while_open",
                        )?,
                        cooldown_target: p_usize(
                            tok(&mut f, ln, "cooldown_target")?,
                            ln,
                            "cooldown_target",
                        )?,
                        probes_outstanding: p_usize(
                            tok(&mut f, ln, "probes_outstanding")?,
                            ln,
                            "probes_outstanding",
                        )?,
                        probe_successes_seen: p_usize(
                            tok(&mut f, ln, "probe_successes_seen")?,
                            ln,
                            "probe_successes_seen",
                        )?,
                    };
                    breakers.push((class, export));
                }
                "quarantine" => {
                    let name = unesc(tok(&mut f, ln, "name")?, ln)?;
                    let strikes = p_usize(tok(&mut f, ln, "strikes")?, ln, "strikes")?;
                    quarantine.push((name, strikes));
                }
                "cache-stats" => {
                    cache_stats = CacheStats {
                        hits: p_u64(tok(&mut f, ln, "hits")?, ln, "hits")?,
                        rescaled_hits: p_u64(
                            tok(&mut f, ln, "rescaled_hits")?,
                            ln,
                            "rescaled_hits",
                        )?,
                        drift_invalidations: p_u64(
                            tok(&mut f, ln, "drift_invalidations")?,
                            ln,
                            "drift_invalidations",
                        )?,
                        rebuilds: p_u64(tok(&mut f, ln, "rebuilds")?, ln, "rebuilds")?,
                        evictions: p_u64(tok(&mut f, ln, "evictions")?, ln, "evictions")?,
                    };
                }
                "cache-entry" => {
                    let class = unesc(tok(&mut f, ln, "class")?, ln)?;
                    let nx = p_usize(tok(&mut f, ln, "nx")?, ln, "nx")?;
                    let ny = p_usize(tok(&mut f, ln, "ny")?, ln, "ny")?;
                    let nz = p_usize(tok(&mut f, ln, "nz")?, ln, "nz")?;
                    let components = p_usize(tok(&mut f, ln, "components")?, ln, "components")?;
                    let taps = p_usize(tok(&mut f, ln, "taps")?, ln, "taps")?;
                    cache_entries.push(CacheEntryMeta {
                        key: CacheKey { class, dims: (nx, ny, nz), components, taps },
                        fingerprint: p_hex_u64(tok(&mut f, ln, "fingerprint")?, ln, "fingerprint")?,
                        hits: p_u64(tok(&mut f, ln, "hits")?, ln, "hits")?,
                        rescaled_hits: p_u64(
                            tok(&mut f, ln, "rescaled_hits")?,
                            ln,
                            "rescaled_hits",
                        )?,
                        builds: p_u64(tok(&mut f, ln, "builds")?, ln, "builds")?,
                    });
                }
                other => {
                    // Unknown records are an error under v1: the
                    // version gate is the compatibility mechanism, not
                    // silent skipping.
                    return Err(SnapshotError::Parse {
                        line: ln,
                        message: format!("unknown record {other:?}"),
                    });
                }
            }
        }

        Ok(DaemonSnapshot {
            seq,
            state: PoolState { counters, breakers, quarantine, cache_stats, cache_entries },
        })
    }

    /// Writes atomically: temp file in the target's directory, flush,
    /// then rename over the final path.
    ///
    /// # Errors
    /// Typed I/O failures per operation.
    pub fn write(&self, path: &Path) -> Result<(), SnapshotError> {
        write_atomic(path, &self.encode())
    }

    /// [`DaemonSnapshot::write`] through an explicit [`Storage`]
    /// backend.
    ///
    /// # Errors
    /// Typed I/O failures per operation.
    pub fn write_with(&self, storage: &dyn Storage, path: &Path) -> Result<(), SnapshotError> {
        write_atomic_with(storage, path, &self.encode())
    }

    /// Reads and verifies a snapshot file.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] when the file cannot be read, otherwise
    /// whatever [`DaemonSnapshot::decode`] finds.
    pub fn read(path: &Path) -> Result<Self, SnapshotError> {
        let text = fs::read_to_string(path)
            .map_err(|e| SnapshotError::Io { op: "read", message: e.to_string() })?;
        Self::decode(&text)
    }

    /// [`DaemonSnapshot::read`] through an explicit [`Storage`]
    /// backend.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] when the file cannot be read, otherwise
    /// whatever [`DaemonSnapshot::decode`] finds.
    pub fn read_with(storage: &dyn Storage, path: &Path) -> Result<Self, SnapshotError> {
        let bytes = storage.read(path).map_err(storage_io)?;
        Self::decode(&String::from_utf8_lossy(&bytes))
    }
}

// ---------------------------------------------------------------------
// simulation snapshots

/// Reuse-decision and recovery tallies of a simulation run. Part of
/// the durable state so a resumed run's final report covers the whole
/// trajectory, not just the post-crash tail.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Steps that kept the cached hierarchy untouched.
    pub keep: u64,
    /// Steps that rescaled the cached hierarchy in place.
    pub rescale: u64,
    /// Steps that rebuilt the Galerkin chain from scratch (the initial
    /// setup counts as one).
    pub rebuild: u64,
    /// Sentinel-verified level repairs across all steps.
    pub repairs: u64,
    /// Rollback-and-rebuild recoveries (step rewound to last good
    /// state after the in-step ladder was exhausted).
    pub rollbacks: u64,
}

/// The durable state of a time-stepping simulation between steps: the
/// cursor (which step completed, which step the cached chain and its
/// audit baseline were built at), the carried solution, and the
/// decision tallies.
///
/// Everything else the driver needs — the operator trajectory, the
/// chain itself, the range-audit baseline — is a pure function of
/// `(problem, size, step)`, so it is *reconstructed* on resume rather
/// than persisted, and the resumed run is bit-identical to an
/// uninterrupted one.
#[derive(Clone, Debug, PartialEq)]
pub struct SimSnapshot {
    /// Problem name (the trajectory generator's identity).
    pub problem: String,
    /// Grid extent the trajectory was built at.
    pub size: usize,
    /// Total steps the run was asked for.
    pub steps: u64,
    /// Convergence tolerance.
    pub tol: f64,
    /// Chaos-schedule seed (0 when chaos is off).
    pub seed: u64,
    /// Last *completed* step (the snapshot is written after a step
    /// commits; resume continues at `step + 1`).
    pub step: u64,
    /// Step whose operator the cached Galerkin chain was built from.
    pub chain_step: u64,
    /// Step whose operator currently occupies the chain's finest level
    /// (differs from `chain_step` after a rescale-in-place).
    pub finest_step: u64,
    /// Final residual of the last completed step.
    pub last_resid: f64,
    /// Decision and recovery tallies so far.
    pub counters: SimCounters,
    /// The last committed solution vector (the implicit-step coupling
    /// for step `step + 1`).
    pub x: Vec<f64>,
}

impl SimSnapshot {
    /// Serializes to the versioned text format, checksum trailer
    /// included.
    pub fn encode(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!("{SIM_MAGIC} v{SNAPSHOT_VERSION}\n"));
        body.push_str(&format!("problem {}\n", esc(&self.problem)));
        body.push_str(&format!(
            "config {} {} {:016x} {:016x}\n",
            self.size,
            self.steps,
            self.tol.to_bits(),
            self.seed,
        ));
        body.push_str(&format!("cursor {} {} {}\n", self.step, self.chain_step, self.finest_step));
        body.push_str(&format!("resid {:016x}\n", self.last_resid.to_bits()));
        let c = &self.counters;
        body.push_str(&format!(
            "counters {} {} {} {} {}\n",
            c.keep, c.rescale, c.rebuild, c.repairs, c.rollbacks,
        ));
        body.push_str(&format!("x {}", self.x.len()));
        for v in &self.x {
            body.push_str(&format!(" {:016x}", v.to_bits()));
        }
        body.push('\n');
        let sum = checksum_of(&body);
        format!("{body}checksum {sum:016x}\n")
    }

    /// Parses the text format, verifying magic, version, and checksum.
    ///
    /// # Errors
    /// Typed [`SnapshotError`] on any structural problem; a file with
    /// no checksum trailer is [`SnapshotError::Truncated`].
    pub fn decode(text: &str) -> Result<Self, SnapshotError> {
        let body = frame_body(text, SIM_MAGIC)?;
        let mut lines = body.lines().enumerate();
        lines.next(); // header, already validated

        let mut snap = SimSnapshot {
            problem: String::new(),
            size: 0,
            steps: 0,
            tol: 0.0,
            seed: 0,
            step: 0,
            chain_step: 0,
            finest_step: 0,
            last_resid: 0.0,
            counters: SimCounters::default(),
            x: Vec::new(),
        };
        for (idx, raw) in lines {
            let ln = idx + 1;
            let mut f = raw.split_whitespace();
            let record = tok(&mut f, ln, "record tag")?;
            match record {
                "problem" => {
                    snap.problem = unesc(tok(&mut f, ln, "problem")?, ln)?;
                }
                "config" => {
                    snap.size = p_usize(tok(&mut f, ln, "size")?, ln, "size")?;
                    snap.steps = p_u64(tok(&mut f, ln, "steps")?, ln, "steps")?;
                    snap.tol = p_f64_bits(tok(&mut f, ln, "tol")?, ln, "tol")?;
                    snap.seed = p_hex_u64(tok(&mut f, ln, "seed")?, ln, "seed")?;
                }
                "cursor" => {
                    snap.step = p_u64(tok(&mut f, ln, "step")?, ln, "step")?;
                    snap.chain_step = p_u64(tok(&mut f, ln, "chain_step")?, ln, "chain_step")?;
                    snap.finest_step = p_u64(tok(&mut f, ln, "finest_step")?, ln, "finest_step")?;
                }
                "resid" => {
                    snap.last_resid = p_f64_bits(tok(&mut f, ln, "resid")?, ln, "resid")?;
                }
                "counters" => {
                    snap.counters = SimCounters {
                        keep: p_u64(tok(&mut f, ln, "keep")?, ln, "keep")?,
                        rescale: p_u64(tok(&mut f, ln, "rescale")?, ln, "rescale")?,
                        rebuild: p_u64(tok(&mut f, ln, "rebuild")?, ln, "rebuild")?,
                        repairs: p_u64(tok(&mut f, ln, "repairs")?, ln, "repairs")?,
                        rollbacks: p_u64(tok(&mut f, ln, "rollbacks")?, ln, "rollbacks")?,
                    };
                }
                "x" => {
                    let len = p_usize(tok(&mut f, ln, "x length")?, ln, "x length")?;
                    let mut x = Vec::with_capacity(len);
                    for i in 0..len {
                        x.push(p_f64_bits(
                            tok(&mut f, ln, &format!("x[{i}]"))?,
                            ln,
                            &format!("x[{i}]"),
                        )?);
                    }
                    if f.next().is_some() {
                        return Err(SnapshotError::Parse {
                            line: ln,
                            message: format!("x record longer than its declared length {len}"),
                        });
                    }
                    snap.x = x;
                }
                other => {
                    return Err(SnapshotError::Parse {
                        line: ln,
                        message: format!("unknown record {other:?}"),
                    });
                }
            }
        }
        Ok(snap)
    }

    /// Writes atomically: temp file in the target's directory, flush,
    /// then rename over the final path.
    ///
    /// # Errors
    /// Typed I/O failures per operation.
    pub fn write(&self, path: &Path) -> Result<(), SnapshotError> {
        write_atomic(path, &self.encode())
    }

    /// [`SimSnapshot::write`] through an explicit [`Storage`] backend.
    ///
    /// # Errors
    /// Typed I/O failures per operation.
    pub fn write_with(&self, storage: &dyn Storage, path: &Path) -> Result<(), SnapshotError> {
        write_atomic_with(storage, path, &self.encode())
    }

    /// Reads and verifies a simulation snapshot file.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] when the file cannot be read, otherwise
    /// whatever [`SimSnapshot::decode`] finds.
    pub fn read(path: &Path) -> Result<Self, SnapshotError> {
        let text = fs::read_to_string(path)
            .map_err(|e| SnapshotError::Io { op: "read", message: e.to_string() })?;
        Self::decode(&text)
    }

    /// [`SimSnapshot::read`] through an explicit [`Storage`] backend.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] when the file cannot be read, otherwise
    /// whatever [`SimSnapshot::decode`] finds.
    pub fn read_with(storage: &dyn Storage, path: &Path) -> Result<Self, SnapshotError> {
        let bytes = storage.read(path).map_err(storage_io)?;
        Self::decode(&String::from_utf8_lossy(&bytes))
    }
}

// ---------------------------------------------------------------------
// A/B generation rotation

/// A/B-rotated snapshot publication and recovery.
///
/// A single snapshot file is a durability hazard: a torn write while
/// republishing destroys the only copy. The store rotates publications
/// between two sibling slots (`<base>.a` for even generations,
/// `<base>.b` for odd), so the slot being overwritten always holds the
/// *oldest* of the two retained generations — a crash mid-publish can
/// never touch the newest good snapshot. The bare `<base>` path is
/// honoured read-only as the legacy single-file layout.
///
/// Recovery scans all three paths, quarantines every present-but-
/// undecodable file (renaming it to `<path>.quarantine` and fsyncing
/// the directory, so the evidence survives without ever being mistaken
/// for a live snapshot again), and hands the decodable candidates to
/// the caller, who picks by its own ordering (daemon `seq`, simulation
/// `step`).
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    base: PathBuf,
}

/// What [`SnapshotStore::recover`] found on disk.
#[derive(Debug)]
pub struct Recovery<T> {
    /// Every slot that decoded cleanly, with the path it came from.
    pub candidates: Vec<(PathBuf, T)>,
    /// Every present-but-undecodable slot, with the decode error. The
    /// files were renamed to `<path>.quarantine`.
    pub quarantined: Vec<(PathBuf, SnapshotError)>,
}

impl SnapshotStore {
    /// A store rooted at `base` (the legacy single-file path; the
    /// rotation slots are derived siblings).
    pub fn new(base: impl Into<PathBuf>) -> Self {
        SnapshotStore { base: base.into() }
    }

    /// The legacy single-file path (read-only candidate).
    pub fn legacy(&self) -> &Path {
        &self.base
    }

    /// The slot a given publication generation lands in.
    pub fn slot_for(&self, generation: u64) -> PathBuf {
        self.slot(if generation.is_multiple_of(2) { "a" } else { "b" })
    }

    fn slot(&self, tag: &str) -> PathBuf {
        let mut p = self.base.clone();
        let mut name = p.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        name.push(".");
        name.push(tag);
        p.set_file_name(name);
        p
    }

    /// Publishes snapshot text into the slot for `generation` (atomic
    /// write + rename + directory fsync) and returns the slot path.
    ///
    /// # Errors
    /// Typed I/O failures per operation.
    pub fn publish(
        &self,
        storage: &dyn Storage,
        generation: u64,
        text: &str,
    ) -> Result<PathBuf, SnapshotError> {
        let slot = self.slot_for(generation);
        write_atomic_with(storage, &slot, text)?;
        Ok(slot)
    }

    /// Scans legacy + both slots, decoding each present file with
    /// `decode`. Undecodable files are quarantined (renamed to
    /// `<path>.quarantine`, directory fsynced) and reported; decodable
    /// ones are returned for the caller to rank.
    ///
    /// # Errors
    /// Only a failing *read* operation (not a failing decode) aborts
    /// recovery — decode failures are the condition the store exists
    /// to survive.
    pub fn recover<T>(
        &self,
        storage: &dyn Storage,
        decode: &dyn Fn(&str) -> Result<T, SnapshotError>,
    ) -> Result<Recovery<T>, SnapshotError> {
        let mut out = Recovery { candidates: Vec::new(), quarantined: Vec::new() };
        for path in [self.base.clone(), self.slot("a"), self.slot("b")] {
            if !storage.exists(&path) {
                continue;
            }
            let bytes = storage.read(&path).map_err(storage_io)?;
            match decode(&String::from_utf8_lossy(&bytes)) {
                Ok(value) => out.candidates.push((path, value)),
                Err(err) => {
                    Self::quarantine(storage, &path);
                    out.quarantined.push((path, err));
                }
            }
        }
        Ok(out)
    }

    /// Best-effort quarantine: move the corrupt file aside so it is
    /// never read as a snapshot again, keeping it for post-mortems.
    fn quarantine(storage: &dyn Storage, path: &Path) {
        let mut target = path.to_path_buf();
        let mut name = target.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        name.push(".quarantine");
        target.set_file_name(name);
        if storage.rename(path, &target).is_ok() {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                let _ = storage.sync_dir(dir);
            }
        }
    }
}
