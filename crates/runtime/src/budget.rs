//! Solve budgets and cooperative cancellation.
//!
//! A [`Budget`] bounds one solve *session* (every ladder attempt
//! included) along three axes — wall clock, outer iterations, and
//! V-cycle applications — and carries a [`CancelToken`] its owner can
//! trip from another thread. The solvers never see the budget directly:
//! [`BudgetGuard::arm`] turns it into a [`SolveControl`] that the
//! Krylov loops poll once per iteration, and the V-cycle count flows in
//! through the shared counter `fp16mg_core::Mg::cycle_counter` exposes.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fp16mg_krylov::{SolveControl, SolveError};

/// Cooperative cancellation flag, cheaply cloneable; all clones observe
/// the same state. Cancellation is one-way: there is no reset, a
/// cancelled session stays cancelled.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Every solve polling a guard built from this token
    /// stops at its next iteration boundary with
    /// [`SolveError::Cancelled`].
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Declarative resource bounds for one solve session. `None` means
/// unlimited along that axis; [`Budget::default`] is fully unlimited
/// except for the cancel token (always present, initially clear).
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Wall-clock allowance measured from [`BudgetGuard::arm`].
    pub deadline: Option<Duration>,
    /// Total outer (Krylov) iterations across all ladder attempts.
    pub max_iters: Option<usize>,
    /// Total V-cycle applications across all ladder attempts, counting
    /// the re-runs the self-healing preconditioner performs internally.
    pub max_vcycles: Option<usize>,
    /// Cooperative cancellation flag.
    pub cancel: CancelToken,
}

impl Budget {
    /// An unlimited budget (cancellable only).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A wall-clock-only budget.
    pub fn with_deadline(deadline: Duration) -> Self {
        Budget { deadline: Some(deadline), ..Self::default() }
    }
}

/// A [`Budget`] armed with a start instant and live counters — the
/// session-scoped enforcement object. One guard spans every attempt of
/// a retry ladder, so the deadline and cycle budget are *session*
/// totals, not per-attempt allowances.
#[derive(Clone, Debug)]
pub struct BudgetGuard {
    budget: Budget,
    started: Instant,
    /// Shared V-cycle counter; hierarchies built during the session link
    /// their own counters here via [`BudgetGuard::adopt_cycles`].
    vcycles: Arc<AtomicUsize>,
    /// Outer iterations already consumed by *finished* attempts.
    iters_done: usize,
}

impl BudgetGuard {
    /// Starts the session clock.
    pub fn arm(budget: Budget) -> Self {
        BudgetGuard {
            budget,
            started: Instant::now(),
            vcycles: Arc::new(AtomicUsize::new(0)),
            iters_done: 0,
        }
    }

    /// The underlying budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Time elapsed since the guard was armed.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Remaining wall-clock allowance (`None` when unbounded). Saturates
    /// at zero once the deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.budget.deadline.map(|d| d.saturating_sub(self.started.elapsed()))
    }

    /// V-cycles consumed so far.
    pub fn vcycles(&self) -> usize {
        self.vcycles.load(Ordering::Relaxed)
    }

    /// Adopts a freshly built hierarchy's cycle counter: the hierarchy's
    /// applications accumulate into this guard's session total. Call
    /// once per built hierarchy, passing `mg.cycle_counter()`.
    ///
    /// (The guard keeps its own counter and *pre-charges* the new
    /// hierarchy's counter with the cycles already spent, so a rebuilt
    /// hierarchy starting from zero cannot reset the session total.)
    pub fn adopt_cycles(&mut self, counter: Arc<AtomicUsize>) {
        counter.store(self.vcycles.load(Ordering::Relaxed), Ordering::Relaxed);
        self.vcycles = counter;
    }

    /// Charges a finished attempt's outer-iteration count against the
    /// session iteration budget.
    pub fn charge_iters(&mut self, iters: usize) {
        self.iters_done = self.iters_done.saturating_add(iters);
    }

    /// Outer iterations consumed by finished attempts.
    pub fn iters_done(&self) -> usize {
        self.iters_done
    }

    /// The per-attempt iteration cap: the smaller of the caller's
    /// `max_iters` and what is left of the session budget. `None` when
    /// the session iteration budget is already exhausted.
    pub fn clamp_iters(&self, per_attempt: usize) -> Option<usize> {
        match self.budget.max_iters {
            None => Some(per_attempt),
            Some(total) => {
                let left = total.saturating_sub(self.iters_done);
                if left == 0 {
                    None
                } else {
                    Some(per_attempt.min(left))
                }
            }
        }
    }
}

impl SolveControl for BudgetGuard {
    fn check(&mut self, iter: usize) -> Result<(), SolveError> {
        if self.budget.cancel.is_cancelled() {
            return Err(SolveError::Cancelled { iter });
        }
        if let Some(deadline) = self.budget.deadline {
            let elapsed = self.started.elapsed();
            if elapsed > deadline {
                return Err(SolveError::DeadlineExceeded { iter, elapsed, deadline });
            }
        }
        if let Some(budget) = self.budget.max_vcycles {
            let used = self.vcycles.load(Ordering::Relaxed);
            if used >= budget {
                return Err(SolveError::VcycleBudgetExceeded { iter, used, budget });
            }
        }
        Ok(())
    }
}
