//! The serve pool: admission-controlled, overload-protected concurrent
//! request driver with panic isolation.
//!
//! [`ServePool`] is the front door for batches of [`SolveRequest`]s. A
//! request passes three gates before any numerical work is spent on it:
//!
//! 1. **Capacity** — the bounded [`AdmissionQueue`] (total and
//!    per-priority caps) refuses what cannot be queued, so latency never
//!    collapses under unbounded intake;
//! 2. **Breaker** — the per-problem-class [`BreakerRegistry`] refuses
//!    classes whose recent sessions keep failing terminally, until a
//!    half-open probe proves them healthy again;
//! 3. **Shed** — the pressure signal (queue fill, queued deadline
//!    slack) sheds [`Priority::BestEffort`] work first and
//!    [`Priority::Batch`] work near saturation, while admitted work is
//!    degraded ([`DegradeProfile::Reduced`]/[`DegradeProfile::Economy`])
//!    instead of queued at full cost.
//!
//! Every gate decision is typed: a refused request carries its
//! [`AdmissionError`], a degraded one its [`DegradeEvent`] trail. The
//! admission phase is sequential and driven only by declared quantities,
//! so a replayed batch makes identical decisions; execution then fans
//! out over scoped workers (highest priority first) with per-request
//! `catch_unwind` containment, exactly as before.
//!
//! [`run_batch`] survives as a thin compatibility wrapper: an unbounded
//! queue, no shedding, breakers off — the pre-admission behavior.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use fp16mg_krylov::{SolveError, SolveResult};

use crate::admission::{AdmissionConfig, AdmissionError, AdmissionQueue, Priority};
use crate::breaker::{BreakerConfig, BreakerDecision, BreakerRegistry};
use crate::ladder::{run_session, RetryReport, SolveRequest};
use crate::shed::{estimate_pressure, DegradeEvent, DegradeProfile, ShedPolicy};

/// Why one request ended without a converged result: refused at
/// admission, or admitted and then failed in its solve session. Nothing
/// a request can experience is untyped.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// Refused before any numerical work: queue full, shed, or breaker
    /// open.
    Rejected(AdmissionError),
    /// Admitted, but the session ended with a typed solve failure
    /// (ladder exhaustion, deadline, cancellation, contained panic, …).
    Session(SolveError),
}

impl ServeError {
    /// The admission refusal, when this is one.
    pub fn rejection(&self) -> Option<&AdmissionError> {
        match self {
            ServeError::Rejected(e) => Some(e),
            ServeError::Session(_) => None,
        }
    }

    /// The session failure, when this is one.
    pub fn session(&self) -> Option<&SolveError> {
        match self {
            ServeError::Rejected(_) => None,
            ServeError::Session(e) => Some(e),
        }
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Rejected(e) => write!(f, "rejected: {e}"),
            ServeError::Session(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Outcome of one request in a batch, tagged with its submission index
/// and full admission/degradation provenance.
#[derive(Clone, Debug)]
pub struct RequestOutcome {
    /// Position in the submitted batch (outcomes are returned in this
    /// order regardless of which worker finished first).
    pub index: usize,
    /// The request's display name.
    pub name: String,
    /// The request's priority class.
    pub priority: Priority,
    /// The request's problem class (breaker key).
    pub class: String,
    /// Converged result, or the typed error that ended the request —
    /// an admission refusal ([`ServeError::Rejected`]) or a session
    /// failure ([`ServeError::Session`], including
    /// [`SolveError::WorkerPanicked`] for contained panics).
    pub result: Result<SolveResult, ServeError>,
    /// The solution vector, when the session converged.
    pub solution: Option<Vec<f64>>,
    /// Every ladder attempt the session took (empty for rejected and
    /// panicked requests).
    pub report: RetryReport,
    /// The pressure value observed at this request's admission attempt.
    pub pressure: f64,
    /// The quality profile the request was served at (always
    /// [`DegradeProfile::Full`] for rejected requests and half-open
    /// probes).
    pub profile: DegradeProfile,
    /// Typed trail of every quality downgrade applied before the solve.
    pub degrades: Vec<DegradeEvent>,
    /// True when this request was admitted as a half-open breaker probe.
    pub probe: bool,
    /// Outer iterations summed over all attempts.
    pub iters: usize,
    /// V-cycle applications summed over all attempts.
    pub vcycles: usize,
    /// Wall time of the session on its worker (zero for rejected
    /// requests — rejection spends no solve time, that is the point).
    pub seconds: f64,
}

impl RequestOutcome {
    /// True when the session converged.
    pub fn converged(&self) -> bool {
        self.result.is_ok()
    }

    /// The typed admission refusal, when the request was rejected.
    pub fn rejection(&self) -> Option<&AdmissionError> {
        self.result.as_ref().err().and_then(ServeError::rejection)
    }

    /// True when the request was served at a degraded profile.
    pub fn degraded(&self) -> bool {
        self.profile != DegradeProfile::Full
    }
}

/// Full configuration of a [`ServePool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker threads executing admitted requests (clamped to at least 1
    /// and at most the batch size).
    pub workers: usize,
    /// Bounded-queue shape.
    pub admission: AdmissionConfig,
    /// Pressure thresholds and degraded-profile knobs.
    pub shed: ShedPolicy,
    /// Per-problem-class circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            admission: AdmissionConfig::default(),
            shed: ShedPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

impl PoolConfig {
    /// The [`run_batch`] compatibility shape: practically unbounded
    /// queue, shedding and degradation off, breakers off. Every request
    /// is admitted at full quality.
    pub fn unbounded(workers: usize) -> Self {
        PoolConfig {
            workers,
            admission: AdmissionConfig::unbounded(),
            shed: ShedPolicy::disabled(),
            breaker: BreakerConfig::disabled(),
        }
    }
}

/// One admitted request, carrying its provenance to the worker phase.
struct Admitted {
    index: usize,
    req: SolveRequest,
    pressure: f64,
    profile: DegradeProfile,
    degrades: Vec<DegradeEvent>,
    probe: bool,
}

/// The overload-protected serve pool. Owns the breaker registry, which
/// persists across [`ServePool::run`] calls — a class that poisons one
/// batch stays refused in the next until its half-open probe clears it.
/// The admission queue is per-batch: each `run` starts with an empty
/// bounded queue.
pub struct ServePool {
    cfg: PoolConfig,
    breakers: BreakerRegistry,
}

impl ServePool {
    /// A pool with fresh (all-closed) breakers.
    pub fn new(cfg: PoolConfig) -> Self {
        let breakers = BreakerRegistry::new(cfg.breaker.clone());
        ServePool { cfg, breakers }
    }

    /// The pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    /// The breaker registry (states and transition log).
    pub fn breakers(&self) -> &BreakerRegistry {
        &self.breakers
    }

    /// Serves one batch: sequential typed admission, then concurrent
    /// execution of the admitted requests (highest priority first) on
    /// scoped workers with per-request panic containment. Outcomes come
    /// back in submission order, one per request, rejected or not.
    ///
    /// Completed sessions are recorded into the breaker registry in
    /// submission order after the batch finishes, so breaker evolution
    /// is deterministic regardless of worker interleaving.
    pub fn run(&mut self, requests: Vec<SolveRequest>) -> Vec<RequestOutcome> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let mut queue = AdmissionQueue::new(self.cfg.admission.clone());
        let workers = self.cfg.workers.clamp(1, n);

        // --- Phase 1: sequential admission. Decisions depend only on
        // declared quantities and arrival order, never on wall clock.
        let mut slots: Vec<Option<RequestOutcome>> = (0..n).map(|_| None).collect();
        let mut admitted: Vec<Admitted> = Vec::new();
        let mut queued_deadlines: Vec<Option<std::time::Duration>> = Vec::new();
        for (index, mut req) in requests.into_iter().enumerate() {
            let priority = req.priority;
            let class = req.class.clone();
            let name = req.name.clone();
            let reject = |err: AdmissionError, pressure: f64| RequestOutcome {
                index,
                name: name.clone(),
                priority,
                class: class.clone(),
                result: Err(ServeError::Rejected(err)),
                solution: None,
                report: RetryReport::default(),
                pressure,
                profile: DegradeProfile::Full,
                degrades: Vec::new(),
                probe: false,
                iters: 0,
                vcycles: 0,
                seconds: 0.0,
            };

            // Gate 1: bounded capacity.
            if let Err(e) = queue.try_reserve(priority) {
                slots[index] = Some(reject(e, queue.fill()));
                continue;
            }
            // Gate 2: the class's circuit breaker. (Checked after the
            // capacity reservation so a granted half-open probe always
            // has a slot — no rollback path.)
            let probe = match self.breakers.on_admission_attempt(&class) {
                BreakerDecision::Reject { failure_rate, cooldown_remaining } => {
                    queue.release(priority);
                    let err = AdmissionError::BreakerOpen {
                        class: class.clone(),
                        failure_rate,
                        cooldown_remaining,
                    };
                    slots[index] = Some(reject(err, queue.fill()));
                    continue;
                }
                BreakerDecision::Admit { probe } => probe,
            };
            // Gate 3: the pressure signal. Probes bypass shedding — the
            // whole point of a probe is to run and report.
            let signal = estimate_pressure(
                queue.depth(),
                queue.config().capacity,
                workers,
                queue.config().est_service,
                &queued_deadlines,
            );
            let pressure = signal.value();
            if !probe && self.cfg.shed.should_shed(priority, pressure) {
                queue.release(priority);
                slots[index] = Some(reject(AdmissionError::Shed { priority, pressure }, pressure));
                continue;
            }

            // Admitted. Probes run at full quality: a degraded probe
            // would test the wrong thing.
            let profile =
                if probe { DegradeProfile::Full } else { self.cfg.shed.profile_for(pressure) };
            let degrades = req.apply_profile(profile, &self.cfg.shed);
            queued_deadlines.push(req.budget.deadline);
            admitted.push(Admitted { index, req, pressure, profile, degrades, probe });
        }

        // --- Phase 2: concurrent execution, highest priority first (the
        // shed order in reverse: what we protect hardest runs soonest).
        admitted.sort_by_key(|a| (a.req.priority.index(), a.index));
        let exec: Mutex<VecDeque<Admitted>> = Mutex::new(admitted.into_iter().collect());
        let done: Vec<Mutex<Option<(RequestOutcome, bool)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // The lock is held only around the pop — a panicking
                    // session can never poison the queue.
                    let job = exec.lock().expect("execution queue poisoned").pop_front();
                    let Some(adm) = job else { break };
                    let Admitted { index, req, pressure, profile, degrades, probe } = adm;
                    let name = req.name.clone();
                    let priority = req.priority;
                    let class = req.class.clone();
                    let t0 = Instant::now();
                    let outcome = match catch_unwind(AssertUnwindSafe(|| run_session(&req))) {
                        Ok(sess) => {
                            // Cancelled sessions say nothing about class
                            // health; everything else feeds the breaker.
                            let countable =
                                !matches!(sess.result, Err(SolveError::Cancelled { .. }));
                            (
                                RequestOutcome {
                                    index,
                                    name,
                                    priority,
                                    class,
                                    result: sess.result.map_err(ServeError::Session),
                                    solution: sess.solution,
                                    report: sess.report,
                                    pressure,
                                    profile,
                                    degrades,
                                    probe,
                                    iters: sess.iters,
                                    vcycles: sess.vcycles,
                                    seconds: sess.seconds,
                                },
                                countable,
                            )
                        }
                        Err(payload) => (
                            RequestOutcome {
                                index,
                                name,
                                priority,
                                class,
                                result: Err(ServeError::Session(SolveError::WorkerPanicked {
                                    message: panic_message(payload.as_ref()),
                                })),
                                solution: None,
                                report: RetryReport::default(),
                                pressure,
                                profile,
                                degrades,
                                probe,
                                iters: 0,
                                vcycles: 0,
                                seconds: t0.elapsed().as_secs_f64(),
                            },
                            true,
                        ),
                    };
                    *done[index].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });

        for (index, slot) in done.into_iter().enumerate() {
            if let Some((outcome, countable)) = slot.into_inner().expect("result slot poisoned") {
                if countable {
                    self.breakers.record(&outcome.class, outcome.converged(), outcome.probe);
                }
                slots[index] = Some(outcome);
            }
        }

        slots
            .into_iter()
            .map(|slot| slot.expect("every request produces an outcome, admitted or not"))
            .collect()
    }
}

/// Runs every request through [`run_session`] on a pool of `workers`
/// scoped threads and returns one [`RequestOutcome`] per request, in
/// submission order — the pre-admission-control entry point, now a thin
/// wrapper over [`ServePool`] with overload protection disabled: nothing
/// is refused, shed, or degraded.
///
/// Workers pull from a shared queue, so a batch of mixed-size problems
/// load-balances naturally. `workers` is clamped to `[1, len]` (so
/// `workers == 0` serves the batch on one worker), and an empty batch
/// returns an empty vector. Panics inside a session are caught
/// per-request; the corresponding outcome carries
/// [`SolveError::WorkerPanicked`] with the panic message, and the
/// remaining requests still complete.
pub fn run_batch(requests: Vec<SolveRequest>, workers: usize) -> Vec<RequestOutcome> {
    ServePool::new(PoolConfig::unbounded(workers)).run(requests)
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}
