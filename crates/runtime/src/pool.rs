//! The serve pool: admission-controlled, overload-protected concurrent
//! request driver with panic isolation, hierarchy caching, and worker
//! supervision.
//!
//! [`ServePool`] is the front door for batches of [`SolveRequest`]s. A
//! request passes four gates before any numerical work is spent on it:
//!
//! 1. **Quarantine** — a request name that has repeatedly wedged or
//!    panicked its worker is refused outright
//!    ([`AdmissionError::Quarantined`]) — see [`crate::supervise`];
//! 2. **Capacity** — the bounded [`AdmissionQueue`] (total and
//!    per-priority caps) refuses what cannot be queued, so latency never
//!    collapses under unbounded intake;
//! 3. **Breaker** — the per-problem-class [`BreakerRegistry`] refuses
//!    classes whose recent sessions keep failing terminally, until a
//!    half-open probe proves them healthy again;
//! 4. **Shed** — the pressure signal (queue fill, queued deadline
//!    slack) sheds [`Priority::BestEffort`] work first and
//!    [`Priority::Batch`] work near saturation, while admitted work is
//!    degraded ([`DegradeProfile::Reduced`]/[`DegradeProfile::Economy`])
//!    instead of queued at full cost.
//!
//! Admitted requests then hit the [`HierarchyCache`]: the expensive FP64
//! Galerkin setup is served from a retained chain when the operator has
//! not drifted past the audit bound, and each outcome records the typed
//! [`CacheEventKind`] that produced its hierarchy.
//!
//! Every gate decision is typed: a refused request carries its
//! [`AdmissionError`], a degraded one its [`DegradeEvent`] trail. The
//! admission phase is sequential and driven only by declared quantities,
//! so a replayed batch makes identical decisions; execution then fans
//! out over scoped workers (highest priority first) with per-request
//! `catch_unwind` containment and — when supervision is enabled — a
//! monitor thread that cancels wedged requests past their deadline.
//!
//! The pool's decision state ([`ServeCounters`], breakers, quarantine
//! strikes, cache metadata) exports as a [`PoolState`] for the daemon
//! snapshot and restores from one, which is what makes a restarted
//! daemon replay bit-identical decisions.
//!
//! [`run_batch`] survives as a thin compatibility wrapper: an unbounded
//! queue, no shedding, breakers off, cache and supervision off — the
//! pre-admission behavior.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use fp16mg_krylov::{SolveError, SolveResult};

use crate::admission::{AdmissionConfig, AdmissionError, AdmissionQueue, Priority};
use crate::breaker::{BreakerConfig, BreakerDecision, BreakerExport, BreakerRegistry};
use crate::budget::CancelToken;
use crate::cache::{CacheConfig, CacheEntryMeta, CacheEventKind, CacheStats, HierarchyCache};
use crate::ladder::{run_session_with, RetryReport, SolveRequest};
use crate::mem::MemGovernor;
use crate::ring::Ring;
use crate::shed::{estimate_pressure, DegradeEvent, DegradeProfile, ShedPolicy};
use crate::supervise::{Quarantine, SuperviseConfig, WorkerEvent, WorkerEventKind};

/// Why one request ended without a converged result: refused at
/// admission, or admitted and then failed in its solve session. Nothing
/// a request can experience is untyped.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// Refused before any numerical work: queue full, shed, breaker
    /// open, or quarantined.
    Rejected(AdmissionError),
    /// Admitted, but the session ended with a typed solve failure
    /// (ladder exhaustion, deadline, cancellation, contained panic, …).
    Session(SolveError),
}

impl ServeError {
    /// The admission refusal, when this is one.
    pub fn rejection(&self) -> Option<&AdmissionError> {
        match self {
            ServeError::Rejected(e) => Some(e),
            ServeError::Session(_) => None,
        }
    }

    /// The session failure, when this is one.
    pub fn session(&self) -> Option<&SolveError> {
        match self {
            ServeError::Rejected(_) => None,
            ServeError::Session(e) => Some(e),
        }
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Rejected(e) => write!(f, "rejected: {e}"),
            ServeError::Session(e) => write!(f, "session failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Outcome of one request in a batch, tagged with its submission index
/// and full admission/degradation provenance.
#[derive(Clone, Debug)]
pub struct RequestOutcome {
    /// Position in the submitted batch (outcomes are returned in this
    /// order regardless of which worker finished first).
    pub index: usize,
    /// The request's display name.
    pub name: String,
    /// The request's priority class.
    pub priority: Priority,
    /// The request's problem class (breaker key).
    pub class: String,
    /// Converged result, or the typed error that ended the request —
    /// an admission refusal ([`ServeError::Rejected`]) or a session
    /// failure ([`ServeError::Session`], including
    /// [`SolveError::WorkerPanicked`] for contained panics).
    pub result: Result<SolveResult, ServeError>,
    /// The solution vector, when the session converged.
    pub solution: Option<Vec<f64>>,
    /// Every ladder attempt the session took (empty for rejected and
    /// panicked requests).
    pub report: RetryReport,
    /// The pressure value observed at this request's admission attempt.
    pub pressure: f64,
    /// The quality profile the request was served at (always
    /// [`DegradeProfile::Full`] for rejected requests and half-open
    /// probes).
    pub profile: DegradeProfile,
    /// Typed trail of every quality downgrade applied before the solve.
    pub degrades: Vec<DegradeEvent>,
    /// True when this request was admitted as a half-open breaker probe.
    pub probe: bool,
    /// How the hierarchy cache served this request's setup (`None` when
    /// the cache is disabled, the request was rejected, or the cached
    /// acquire failed and the session built its own hierarchy).
    pub cache: Option<CacheEventKind>,
    /// Outer iterations summed over all attempts.
    pub iters: usize,
    /// V-cycle applications summed over all attempts.
    pub vcycles: usize,
    /// Wall time of the session on its worker (zero for rejected
    /// requests — rejection spends no solve time, that is the point).
    pub seconds: f64,
}

impl RequestOutcome {
    /// True when the session converged.
    pub fn converged(&self) -> bool {
        self.result.is_ok()
    }

    /// The typed admission refusal, when the request was rejected.
    pub fn rejection(&self) -> Option<&AdmissionError> {
        self.result.as_ref().err().and_then(ServeError::rejection)
    }

    /// True when the request was served at a degraded profile.
    pub fn degraded(&self) -> bool {
        self.profile != DegradeProfile::Full
    }
}

/// Cumulative admission/outcome counters. Purely decision-driven (no
/// wall clock), so a checkpointed and restored counter set continues
/// identically on a replayed request stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Requests submitted (admitted or not).
    pub submitted: u64,
    /// Requests admitted to a worker.
    pub admitted: u64,
    /// Refused: bounded queue full.
    pub rejected_queue_full: u64,
    /// Refused: shed under pressure.
    pub rejected_shed: u64,
    /// Refused: class breaker open.
    pub rejected_breaker: u64,
    /// Refused: request name quarantined.
    pub rejected_quarantined: u64,
    /// Admitted at a degraded profile.
    pub degraded: u64,
    /// Sessions that converged.
    pub completed_ok: u64,
    /// Sessions that ended with a typed failure.
    pub completed_err: u64,
}

impl ServeCounters {
    /// Folds one outcome into the counters.
    fn observe(&mut self, outcome: &RequestOutcome) {
        self.submitted += 1;
        match &outcome.result {
            Ok(_) => {
                self.admitted += 1;
                self.completed_ok += 1;
            }
            Err(ServeError::Session(_)) => {
                self.admitted += 1;
                self.completed_err += 1;
            }
            Err(ServeError::Rejected(e)) => match e {
                AdmissionError::QueueFull { .. } => self.rejected_queue_full += 1,
                AdmissionError::Shed { .. } => self.rejected_shed += 1,
                AdmissionError::BreakerOpen { .. } => self.rejected_breaker += 1,
                AdmissionError::Quarantined { .. } => self.rejected_quarantined += 1,
            },
        }
        if outcome.result.as_ref().err().and_then(ServeError::rejection).is_none()
            && outcome.degraded()
        {
            self.degraded += 1;
        }
    }
}

/// The pool's complete exportable decision state — everything a
/// restarted daemon needs to make identical admission, breaker, and
/// cache-keying decisions on a replayed stream. Produced by
/// [`ServePool::export_state`], persisted by
/// [`DaemonSnapshot`](crate::DaemonSnapshot), and consumed by
/// [`ServePool::restore_state`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolState {
    /// Cumulative counters.
    pub counters: ServeCounters,
    /// Every breaker's full state, keyed by class, in class order.
    pub breakers: Vec<(String, BreakerExport)>,
    /// Quarantine strikes, keyed by request name, in name order.
    pub quarantine: Vec<(String, usize)>,
    /// Cache statistics.
    pub cache_stats: CacheStats,
    /// Cache entry metadata (entries restore cold).
    pub cache_entries: Vec<CacheEntryMeta>,
}

/// Full configuration of a [`ServePool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker threads executing admitted requests (clamped to at least 1
    /// and at most the batch size).
    pub workers: usize,
    /// Bounded-queue shape.
    pub admission: AdmissionConfig,
    /// Pressure thresholds and degraded-profile knobs.
    pub shed: ShedPolicy,
    /// Per-problem-class circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Hierarchy-cache tuning (off by default: batch pools rebuild per
    /// request, daemons turn this on).
    pub cache: CacheConfig,
    /// Worker supervision (off by default, for the same reason).
    pub supervise: SuperviseConfig,
    /// Byte budget for the pool's shared [`MemGovernor`]: every
    /// hierarchy, workspace arena, cache entry, and rescale commit is
    /// charged against it; tracked usage over this budget feeds the
    /// pressure signal's `mem_fill` component and triggers cache
    /// eviction. `None` (the default) tracks usage without refusing.
    pub mem_budget: Option<u64>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            admission: AdmissionConfig::default(),
            shed: ShedPolicy::default(),
            breaker: BreakerConfig::default(),
            cache: CacheConfig::disabled(),
            supervise: SuperviseConfig::disabled(),
            mem_budget: None,
        }
    }
}

impl PoolConfig {
    /// The [`run_batch`] compatibility shape: practically unbounded
    /// queue, shedding and degradation off, breakers off, cache and
    /// supervision off. Every request is admitted at full quality.
    pub fn unbounded(workers: usize) -> Self {
        PoolConfig {
            workers,
            admission: AdmissionConfig::unbounded(),
            shed: ShedPolicy::disabled(),
            breaker: BreakerConfig::disabled(),
            cache: CacheConfig::disabled(),
            supervise: SuperviseConfig::disabled(),
            mem_budget: None,
        }
    }

    /// The long-running daemon shape: every protection layer on,
    /// hierarchy cache on, supervision on.
    pub fn daemon(workers: usize) -> Self {
        PoolConfig {
            workers,
            admission: AdmissionConfig::default(),
            shed: ShedPolicy::default(),
            breaker: BreakerConfig::default(),
            cache: CacheConfig::default(),
            supervise: SuperviseConfig::default(),
            mem_budget: None,
        }
    }
}

/// One admitted request, carrying its provenance to the worker phase.
struct Admitted {
    index: usize,
    req: SolveRequest,
    pressure: f64,
    profile: DegradeProfile,
    degrades: Vec<DegradeEvent>,
    probe: bool,
    prebuilt: Option<fp16mg_core::Mg<f32>>,
    cache: Option<CacheEventKind>,
}

/// One worker's heartbeat: what it is running and since when.
struct InFlight {
    name: String,
    cancel: CancelToken,
    started: Instant,
    wedged: bool,
}

/// The overload-protected serve pool. Owns the breaker registry, the
/// hierarchy cache, the quarantine, and the cumulative counters — all of
/// which persist across [`ServePool::run`] calls (and, via
/// [`ServePool::export_state`], across daemon restarts). The admission
/// queue is per-batch: each `run` starts with an empty bounded queue.
pub struct ServePool {
    cfg: PoolConfig,
    breakers: BreakerRegistry,
    cache: HierarchyCache,
    quarantine: Quarantine,
    counters: ServeCounters,
    worker_events: Ring<WorkerEvent>,
    governor: MemGovernor,
}

impl ServePool {
    /// A pool with fresh (all-closed) breakers, an empty cache, and an
    /// empty quarantine. When the config carries a `mem_budget`, the
    /// pool's shared [`MemGovernor`] enforces it across every session
    /// and cache entry.
    pub fn new(cfg: PoolConfig) -> Self {
        let governor = match cfg.mem_budget {
            Some(b) => MemGovernor::with_budget(b),
            None => MemGovernor::unlimited(),
        };
        let breakers = BreakerRegistry::new(cfg.breaker.clone());
        let cache = HierarchyCache::with_governor(cfg.cache.clone(), governor.clone());
        let quarantine = Quarantine::new(cfg.supervise.max_strikes);
        let worker_events = Ring::new(cfg.supervise.event_log_cap);
        ServePool {
            cfg,
            breakers,
            cache,
            quarantine,
            counters: ServeCounters::default(),
            worker_events,
            governor,
        }
    }

    /// The pool's shared memory governor (byte accounting, fault
    /// schedule, fired-fault counts).
    pub fn governor(&self) -> &MemGovernor {
        &self.governor
    }

    /// The pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    /// The breaker registry (states and transition log).
    pub fn breakers(&self) -> &BreakerRegistry {
        &self.breakers
    }

    /// The hierarchy cache (stats and typed event trail).
    pub fn cache(&self) -> &HierarchyCache {
        &self.cache
    }

    /// The poisoned-request quarantine.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Cumulative admission/outcome counters.
    pub fn counters(&self) -> ServeCounters {
        self.counters
    }

    /// The supervision event trail (wedges, contained panics,
    /// quarantine promotions), oldest first.
    pub fn worker_events(&self) -> &[WorkerEvent] {
        &self.worker_events
    }

    /// Exports the pool's decision state for checkpointing.
    pub fn export_state(&self) -> PoolState {
        PoolState {
            counters: self.counters,
            breakers: self.breakers.export(),
            quarantine: self.quarantine.export(),
            cache_stats: self.cache.stats(),
            cache_entries: self.cache.metadata(),
        }
    }

    /// Restores decision state from a checkpoint: counters and breaker
    /// states are adopted wholesale, quarantine strikes merge by
    /// maximum, cache entries restore cold (identity and counters, not
    /// matrices).
    pub fn restore_state(&mut self, state: &PoolState) {
        self.counters = state.counters;
        self.breakers.restore(&state.breakers);
        self.quarantine.restore(&state.quarantine);
        self.cache.restore_stats(state.cache_stats);
        self.cache.restore_metadata(&state.cache_entries);
    }

    /// Serves one batch: sequential typed admission (quarantine,
    /// capacity, breaker, shed) plus cached hierarchy acquisition, then
    /// concurrent execution of the admitted requests (highest priority
    /// first) on scoped workers with per-request panic containment and
    /// optional wedge supervision. Outcomes come back in submission
    /// order, one per request, rejected or not.
    ///
    /// Completed sessions are recorded into the breaker registry in
    /// submission order after the batch finishes, so breaker evolution
    /// is deterministic regardless of worker interleaving. Counters are
    /// folded in the same order. Cancelled sessions (including wedge
    /// cancellations, which are wall-clock events) never feed the
    /// breakers, so the replayable decision state stays deterministic.
    pub fn run(&mut self, requests: Vec<SolveRequest>) -> Vec<RequestOutcome> {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let mut queue = AdmissionQueue::new(self.cfg.admission.clone());
        let workers = self.cfg.workers.clamp(1, n);

        // --- Phase 1: sequential admission. Decisions depend only on
        // declared quantities and arrival order, never on wall clock.
        let mut slots: Vec<Option<RequestOutcome>> = (0..n).map(|_| None).collect();
        let mut admitted: Vec<Admitted> = Vec::new();
        let mut queued_deadlines: Vec<Option<std::time::Duration>> = Vec::new();
        for (index, mut req) in requests.into_iter().enumerate() {
            // Every session charges its hierarchies against the pool's
            // shared governor, so one byte budget covers the whole pool.
            req.governor = self.governor.clone();
            let priority = req.priority;
            let class = req.class.clone();
            let name = req.name.clone();
            let reject = |err: AdmissionError, pressure: f64| RequestOutcome {
                index,
                name: name.clone(),
                priority,
                class: class.clone(),
                result: Err(ServeError::Rejected(err)),
                solution: None,
                report: RetryReport::default(),
                pressure,
                profile: DegradeProfile::Full,
                degrades: Vec::new(),
                probe: false,
                cache: None,
                iters: 0,
                vcycles: 0,
                seconds: 0.0,
            };

            // Gate 0: quarantine. A poison pill is refused before it
            // can consume a queue slot.
            if self.cfg.supervise.enabled && self.quarantine.is_quarantined(&name) {
                let strikes = self.quarantine.strikes_of(&name);
                let err = AdmissionError::Quarantined { name: name.clone(), strikes };
                slots[index] = Some(reject(err, queue.fill()));
                continue;
            }
            // Gate 1: bounded capacity.
            if let Err(e) = queue.try_reserve(priority) {
                slots[index] = Some(reject(e, queue.fill()));
                continue;
            }
            // Gate 2: the class's circuit breaker. (Checked after the
            // capacity reservation so a granted half-open probe always
            // has a slot — no rollback path.)
            let probe = match self.breakers.on_admission_attempt(&class) {
                BreakerDecision::Reject { failure_rate, cooldown_remaining } => {
                    queue.release(priority);
                    let err = AdmissionError::BreakerOpen {
                        class: class.clone(),
                        failure_rate,
                        cooldown_remaining,
                    };
                    slots[index] = Some(reject(err, queue.fill()));
                    continue;
                }
                BreakerDecision::Admit { probe } => probe,
            };
            // Gate 3: the pressure signal. Probes bypass shedding — the
            // whole point of a probe is to run and report.
            let mut signal = estimate_pressure(
                queue.depth(),
                queue.config().capacity,
                workers,
                queue.config().est_service,
                &queued_deadlines,
            );
            signal.mem_fill = self.governor.fill();
            // Memory pressure's first lever is eviction: before any work
            // is degraded or shed, the cache gives bytes back until the
            // fill drops below the degrade threshold (or the cache is
            // empty — residual pressure then degrades/sheds like any
            // other overload).
            if signal.mem_fill >= self.cfg.shed.reduce_at {
                if let Some(budget) = self.governor.budget() {
                    let target = (self.cfg.shed.reduce_at * budget as f64) as u64;
                    let excess = self.governor.used().saturating_sub(target);
                    let cache_target = self.cache.cache_bytes().saturating_sub(excess);
                    self.cache.evict_until_within(cache_target);
                    signal.mem_fill = self.governor.fill();
                }
            }
            let pressure = signal.value();
            if !probe && self.cfg.shed.should_shed(priority, pressure) {
                queue.release(priority);
                slots[index] = Some(reject(AdmissionError::Shed { priority, pressure }, pressure));
                continue;
            }

            // Admitted. Probes run at full quality: a degraded probe
            // would test the wrong thing.
            let profile =
                if probe { DegradeProfile::Full } else { self.cfg.shed.profile_for(pressure) };
            let degrades = req.apply_profile(profile, &self.cfg.shed);

            // Hierarchy acquisition through the cache, sequentially (the
            // cache's event trail and LRU order are part of the
            // deterministic decision state). Runs after degradation so
            // the cache keys on the configuration the session will
            // actually use. A failed acquire falls back to the session's
            // own build, where the error resurfaces typed.
            let (prebuilt, cache) = if self.cfg.cache.enabled {
                match self.cache.acquire(&class, &req.problem.matrix, &req.base) {
                    Ok((mg, kind)) => (Some(mg), Some(kind)),
                    Err(_) => (None, None),
                }
            } else {
                (None, None)
            };

            queued_deadlines.push(req.budget.deadline);
            admitted.push(Admitted {
                index,
                req,
                pressure,
                profile,
                degrades,
                probe,
                prebuilt,
                cache,
            });
        }

        // --- Phase 2: concurrent execution, highest priority first (the
        // shed order in reverse: what we protect hardest runs soonest).
        admitted.sort_by_key(|a| (a.req.priority.index(), a.index));
        let admitted_count = admitted.len();
        let exec: Mutex<VecDeque<Admitted>> = Mutex::new(admitted.into_iter().collect());
        let done: Vec<Mutex<Option<(RequestOutcome, bool)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        let supervise = self.cfg.supervise.clone();
        let hearts: Vec<Mutex<Option<InFlight>>> = (0..workers).map(|_| Mutex::new(None)).collect();
        let completed = AtomicUsize::new(0);
        let events: Mutex<Vec<WorkerEvent>> = Mutex::new(Vec::new());
        let strikes: Mutex<Vec<String>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for w in 0..workers {
                let exec = &exec;
                let done = &done;
                let hearts = &hearts;
                let completed = &completed;
                let events = &events;
                let strikes = &strikes;
                let supervise = &supervise;
                scope.spawn(move || loop {
                    // The lock is held only around the pop — a panicking
                    // session can never poison the queue.
                    let job = exec.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
                    let Some(adm) = job else { break };
                    let Admitted {
                        index,
                        req,
                        pressure,
                        profile,
                        degrades,
                        probe,
                        prebuilt,
                        cache,
                    } = adm;
                    let name = req.name.clone();
                    let priority = req.priority;
                    let class = req.class.clone();
                    if supervise.enabled {
                        *hearts[w].lock().unwrap_or_else(|e| e.into_inner()) = Some(InFlight {
                            name: name.clone(),
                            cancel: req.budget.cancel.clone(),
                            started: Instant::now(),
                            wedged: false,
                        });
                    }
                    let t0 = Instant::now();
                    let outcome = match catch_unwind(AssertUnwindSafe(|| {
                        run_session_with(&req, prebuilt)
                    })) {
                        Ok(sess) => {
                            // Cancelled sessions say nothing about class
                            // health; everything else feeds the breaker.
                            let countable =
                                !matches!(sess.result, Err(SolveError::Cancelled { .. }));
                            (
                                RequestOutcome {
                                    index,
                                    name: name.clone(),
                                    priority,
                                    class,
                                    result: sess.result.map_err(ServeError::Session),
                                    solution: sess.solution,
                                    report: sess.report,
                                    pressure,
                                    profile,
                                    degrades,
                                    probe,
                                    cache,
                                    iters: sess.iters,
                                    vcycles: sess.vcycles,
                                    seconds: sess.seconds,
                                },
                                countable,
                            )
                        }
                        Err(payload) => {
                            if supervise.enabled {
                                events.lock().unwrap_or_else(|e| e.into_inner()).push(
                                    WorkerEvent {
                                        worker: Some(w),
                                        request: name.clone(),
                                        kind: WorkerEventKind::Panicked,
                                    },
                                );
                                strikes
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .push(name.clone());
                            }
                            (
                                RequestOutcome {
                                    index,
                                    name: name.clone(),
                                    priority,
                                    class,
                                    result: Err(ServeError::Session(SolveError::WorkerPanicked {
                                        message: panic_message(payload.as_ref()),
                                    })),
                                    solution: None,
                                    report: RetryReport::default(),
                                    pressure,
                                    profile,
                                    degrades,
                                    probe,
                                    cache,
                                    iters: 0,
                                    vcycles: 0,
                                    seconds: t0.elapsed().as_secs_f64(),
                                },
                                true,
                            )
                        }
                    };
                    if supervise.enabled {
                        let wedged = hearts[w]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .is_some_and(|s| s.wedged);
                        if wedged {
                            strikes.lock().unwrap_or_else(|e| e.into_inner()).push(name.clone());
                        }
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                    *done[index].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                });
            }

            // The monitor: polls every worker's heartbeat and cancels
            // requests that have run past the wedge deadline. Purely
            // wall-clock, so its effects reach outcomes only as
            // `SolveError::Cancelled` (never counted by the breakers).
            if supervise.enabled && admitted_count > 0 {
                let hearts = &hearts;
                let completed = &completed;
                let events = &events;
                let supervise = &supervise;
                scope.spawn(move || {
                    while completed.load(Ordering::SeqCst) < admitted_count {
                        std::thread::sleep(supervise.poll);
                        for (w, slot) in hearts.iter().enumerate() {
                            let mut s = slot.lock().unwrap_or_else(|e| e.into_inner());
                            if let Some(infl) = s.as_mut() {
                                let elapsed = infl.started.elapsed();
                                if !infl.wedged && elapsed > supervise.wedge_after {
                                    infl.wedged = true;
                                    infl.cancel.cancel();
                                    events.lock().unwrap_or_else(|e| e.into_inner()).push(
                                        WorkerEvent {
                                            worker: Some(w),
                                            request: infl.name.clone(),
                                            kind: WorkerEventKind::Wedged {
                                                elapsed: elapsed.as_secs_f64(),
                                            },
                                        },
                                    );
                                }
                            }
                        }
                    }
                });
            }
        });

        // Supervision bookkeeping. Strike *counts* per name are
        // deterministic (each wedge/panic strikes exactly once); only
        // the interleaving of the diagnostic event trail can vary.
        let mut batch_events = events.into_inner().unwrap_or_else(|e| e.into_inner());
        for nm in strikes.into_inner().unwrap_or_else(|e| e.into_inner()) {
            let strikes_now = self.quarantine.strike(&nm);
            if self.cfg.supervise.max_strikes > 0 && strikes_now == self.cfg.supervise.max_strikes {
                batch_events.push(WorkerEvent {
                    worker: None,
                    request: nm.clone(),
                    kind: WorkerEventKind::Quarantined { strikes: strikes_now },
                });
            }
        }
        self.worker_events.extend(batch_events);

        for (index, slot) in done.into_iter().enumerate() {
            if let Some((outcome, countable)) = slot.into_inner().unwrap_or_else(|e| e.into_inner())
            {
                if countable {
                    self.breakers.record(&outcome.class, outcome.converged(), outcome.probe);
                }
                slots[index] = Some(outcome);
            }
        }

        let outcomes: Vec<RequestOutcome> = slots
            .into_iter()
            .map(|slot| slot.expect("every request produces an outcome, admitted or not"))
            .collect();
        for outcome in &outcomes {
            self.counters.observe(outcome);
        }
        outcomes
    }
}

/// Runs every request through the retry ladder on a pool of `workers`
/// scoped threads and returns one [`RequestOutcome`] per request, in
/// submission order — the pre-admission-control entry point, now a thin
/// wrapper over [`ServePool`] with overload protection disabled: nothing
/// is refused, shed, or degraded.
///
/// Workers pull from a shared queue, so a batch of mixed-size problems
/// load-balances naturally. `workers` is clamped to `[1, len]` (so
/// `workers == 0` serves the batch on one worker), and an empty batch
/// returns an empty vector. Panics inside a session are caught
/// per-request; the corresponding outcome carries
/// [`SolveError::WorkerPanicked`] with the panic message, and the
/// remaining requests still complete.
pub fn run_batch(requests: Vec<SolveRequest>, workers: usize) -> Vec<RequestOutcome> {
    ServePool::new(PoolConfig::unbounded(workers)).run(requests)
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}
