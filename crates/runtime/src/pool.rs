//! Concurrent multi-request driver with panic isolation.
//!
//! [`run_batch`] fans a batch of [`SolveRequest`]s out over a scoped
//! worker pool. Each request runs its full retry-ladder session on one
//! worker; a panicking session (a bug, or injected via
//! `SolveRequest::panic_in_worker`) is contained by `catch_unwind` and
//! surfaces as a typed [`SolveError::WorkerPanicked`] outcome — the
//! worker thread survives and keeps draining the queue, and every other
//! request completes normally. No solve can take the process (or its
//! neighbors) down.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use fp16mg_krylov::{SolveError, SolveResult};

use crate::ladder::{run_session, RetryReport, SolveRequest};

/// Outcome of one request in a batch, tagged with its submission index.
#[derive(Clone, Debug)]
pub struct RequestOutcome {
    /// Position in the submitted batch (outcomes are returned in this
    /// order regardless of which worker finished first).
    pub index: usize,
    /// The request's display name.
    pub name: String,
    /// Converged result, or the typed error that ended the session —
    /// including [`SolveError::WorkerPanicked`] for contained panics.
    pub result: Result<SolveResult, SolveError>,
    /// The solution vector, when the session converged.
    pub solution: Option<Vec<f64>>,
    /// Every ladder attempt the session took (empty for panicked
    /// requests).
    pub report: RetryReport,
    /// Outer iterations summed over all attempts.
    pub iters: usize,
    /// V-cycle applications summed over all attempts.
    pub vcycles: usize,
    /// Wall time of the session on its worker.
    pub seconds: f64,
}

impl RequestOutcome {
    /// True when the session converged.
    pub fn converged(&self) -> bool {
        self.result.is_ok()
    }
}

/// Runs every request through [`run_session`] on a pool of `workers`
/// scoped threads and returns one [`RequestOutcome`] per request, in
/// submission order.
///
/// Workers pull from a shared queue, so a batch of mixed-size problems
/// load-balances naturally. `workers` is clamped to `[1, len]`. Panics
/// inside a session are caught per-request; the corresponding outcome
/// carries [`SolveError::WorkerPanicked`] with the panic message, and
/// the remaining requests still complete.
pub fn run_batch(requests: Vec<SolveRequest>, workers: usize) -> Vec<RequestOutcome> {
    let n = requests.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let queue: Mutex<VecDeque<(usize, SolveRequest)>> =
        Mutex::new(requests.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<RequestOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // The lock is held only around the pop — a panicking
                // session can never poison the queue.
                let job = queue.lock().expect("request queue poisoned").pop_front();
                let Some((index, req)) = job else { break };
                let name = req.name.clone();
                let t0 = Instant::now();
                let outcome = match catch_unwind(AssertUnwindSafe(|| run_session(&req))) {
                    Ok(sess) => RequestOutcome {
                        index,
                        name,
                        result: sess.result,
                        solution: sess.solution,
                        report: sess.report,
                        iters: sess.iters,
                        vcycles: sess.vcycles,
                        seconds: sess.seconds,
                    },
                    Err(payload) => RequestOutcome {
                        index,
                        name,
                        result: Err(SolveError::WorkerPanicked {
                            message: panic_message(payload.as_ref()),
                        }),
                        solution: None,
                        report: RetryReport::default(),
                        iters: 0,
                        vcycles: 0,
                        seconds: t0.elapsed().as_secs_f64(),
                    },
                };
                *slots[index].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every queued request produces an outcome")
        })
        .collect()
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}
