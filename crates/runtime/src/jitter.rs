//! The one seeded jitter stream of the runtime.
//!
//! The retry ladder's backoff jitter and the circuit breaker's cooldown
//! jitter each carried a private copy of the same SplitMix64 mixer. Two
//! copies of a bit-exact algorithm are a determinism hazard — a drive-by
//! constant change in one desynchronizes replay — so the mixer lives
//! here once, together with the FNV-1a seed fold the breaker registry
//! uses to give each problem class its own stream.

/// SplitMix64: tiny, stateless, deterministic. `x` is the stream
/// position (seed plus counter); equal inputs produce equal outputs on
/// every platform, which is what makes replayed batches take identical
/// jittered decisions.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a stream position to a uniform value in `[0, 1)` using the top
/// 53 bits (exactly representable in an `f64`).
pub fn unit(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// Folds a name into a shared seed via FNV-1a, giving each named entity
/// (problem class, worker, …) its own decorrelated stream while staying
/// a pure function of `(seed, name)` — reconstructible after a restart
/// without persisting any derived seed.
pub fn fold_seed(seed: u64, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    seed ^ h
}
