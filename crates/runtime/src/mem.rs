//! Memory governor: byte budgets, typed allocation failure, and a
//! deterministic allocation-fault injector.
//!
//! Every large allocation the runtime makes on behalf of a session —
//! hierarchy setup, the V-cycle workspace arena, a cache entry's
//! retained Galerkin chain, a rescale commit — is *charged* against a
//! [`MemGovernor`] before the bytes are considered owned. A charge
//! either succeeds and returns an RAII [`MemCharge`] that credits the
//! bytes back on drop, or fails with a typed [`MemError`] — the setup
//! path never aborts on memory exhaustion; running out of budget is a
//! degrade rung like any other.
//!
//! The governor doubles as a deterministic allocation-fault injector,
//! mirroring `FaultStorage`: every charge has a monotonically increasing
//! op index, a schedule maps indices to [`AllocFault`]s, and fired
//! faults are counted per class so a torture harness can assert that
//! every scheduled failure class actually fired. `repro memtorture`
//! probes a clean run's charge log, then replays it failing each index
//! in turn.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Typed memory failure. `BudgetExceeded` is the organic form (the
/// session's byte budget has no room); `Injected` is the torture
/// harness's deterministic stand-in for a failed allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// The charge would push tracked usage past the budget.
    BudgetExceeded {
        /// Charge class (e.g. `"setup"`, `"workspace"`, `"cache-insert"`).
        class: String,
        /// Bytes the charge requested.
        requested: u64,
        /// Bytes already tracked.
        used: u64,
        /// The budget that refused the charge.
        budget: u64,
    },
    /// An [`AllocFault`] scheduled at this charge's op index fired.
    Injected {
        /// Charge class.
        class: String,
        /// The op index the fault was scheduled at.
        index: u64,
    },
}

impl core::fmt::Display for MemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemError::BudgetExceeded { class, requested, used, budget } => write!(
                f,
                "memory budget exceeded: {class} charge of {requested} B \
                 ({used} B tracked, budget {budget} B)"
            ),
            MemError::Injected { class, index } => {
                write!(f, "injected allocation failure: {class} charge at op {index}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// A deterministic allocation fault, scheduled at a charge op index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocFault {
    /// Fail exactly the charge at the scheduled index.
    Fail,
    /// Fail the charge at the scheduled index and the `count - 1`
    /// charges after it (a bounded burst — the allocator analog of an
    /// ENOSPC burst: pressure that persists for a few requests, then
    /// clears).
    Burst {
        /// Total charges to fail (≥ 1).
        count: u32,
    },
}

/// One charge attempt, for the torture probe's replay log.
#[derive(Clone, Debug)]
pub struct ChargeRecord {
    /// Op index (0-based, monotonically increasing per charge attempt).
    pub index: u64,
    /// Charge class.
    pub class: String,
    /// Bytes requested.
    pub bytes: u64,
}

struct Inner {
    budget: Option<u64>,
    used: u64,
    peak: u64,
    /// Charge attempts so far (the op-index counter).
    ops: u64,
    log: Vec<ChargeRecord>,
    schedule: BTreeMap<u64, AllocFault>,
    /// Remaining charges to fail from an active burst.
    burst_left: u32,
    fired: BTreeMap<String, u64>,
}

impl Inner {
    fn bump_fired(&mut self, key: &str) {
        *self.fired.entry(key.to_string()).or_insert(0) += 1;
    }
}

/// Cloneable handle to a session's memory accounting (shared
/// `Arc<Mutex<_>>` state, mirroring `FaultStorage`).
#[derive(Clone)]
pub struct MemGovernor {
    inner: Arc<Mutex<Inner>>,
}

impl core::fmt::Debug for MemGovernor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let g = self.inner.lock().expect("mem governor lock");
        f.debug_struct("MemGovernor")
            .field("budget", &g.budget)
            .field("used", &g.used)
            .field("peak", &g.peak)
            .field("ops", &g.ops)
            .finish()
    }
}

impl Default for MemGovernor {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl MemGovernor {
    /// A governor with a byte budget.
    pub fn with_budget(budget: u64) -> Self {
        Self::build(Some(budget))
    }

    /// A governor that tracks usage but never refuses a charge
    /// organically (injected faults still fire).
    pub fn unlimited() -> Self {
        Self::build(None)
    }

    fn build(budget: Option<u64>) -> Self {
        MemGovernor {
            inner: Arc::new(Mutex::new(Inner {
                budget,
                used: 0,
                peak: 0,
                ops: 0,
                log: Vec::new(),
                schedule: BTreeMap::new(),
                burst_left: 0,
                fired: BTreeMap::new(),
            })),
        }
    }

    /// Charges `bytes` against the budget. On success the returned
    /// [`MemCharge`] owns the bytes and credits them back when dropped;
    /// on failure nothing is charged and the error is typed.
    ///
    /// Every call — success or failure — consumes one op index and is
    /// recorded in the charge log, so a fault schedule derived from a
    /// clean run's log replays deterministically.
    pub fn try_charge(&self, class: &str, bytes: u64) -> Result<MemCharge, MemError> {
        let mut g = self.inner.lock().expect("mem governor lock");
        let index = g.ops;
        g.ops += 1;
        g.log.push(ChargeRecord { index, class: class.to_string(), bytes });
        match g.schedule.get(&index).copied() {
            Some(AllocFault::Fail) => {
                g.bump_fired("alloc-fail");
                return Err(MemError::Injected { class: class.to_string(), index });
            }
            Some(AllocFault::Burst { count }) => {
                g.burst_left = count.saturating_sub(1);
                g.bump_fired("alloc-burst");
                return Err(MemError::Injected { class: class.to_string(), index });
            }
            None if g.burst_left > 0 => {
                g.burst_left -= 1;
                g.bump_fired("alloc-burst");
                return Err(MemError::Injected { class: class.to_string(), index });
            }
            None => {}
        }
        if let Some(budget) = g.budget {
            let used = g.used;
            if used.saturating_add(bytes) > budget {
                g.bump_fired("budget-exceeded");
                return Err(MemError::BudgetExceeded {
                    class: class.to_string(),
                    requested: bytes,
                    used,
                    budget,
                });
            }
        }
        g.used += bytes;
        g.peak = g.peak.max(g.used);
        Ok(MemCharge { inner: Arc::clone(&self.inner), bytes })
    }

    /// Schedules a fault at charge op index `index`.
    pub fn schedule(&self, index: u64, fault: AllocFault) {
        self.inner.lock().expect("mem governor lock").schedule.insert(index, fault);
    }

    /// Bytes currently tracked (sum of live charges).
    pub fn used(&self) -> u64 {
        self.inner.lock().expect("mem governor lock").used
    }

    /// High-water mark of tracked bytes.
    pub fn peak(&self) -> u64 {
        self.inner.lock().expect("mem governor lock").peak
    }

    /// The byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.inner.lock().expect("mem governor lock").budget
    }

    /// Fraction of the budget in use, in `[0, 1]` (0 when unlimited) —
    /// the memory component of a `PressureSignal`.
    pub fn fill(&self) -> f64 {
        let g = self.inner.lock().expect("mem governor lock");
        match g.budget {
            Some(b) if b > 0 => (g.used as f64 / b as f64).clamp(0.0, 1.0),
            _ => 0.0,
        }
    }

    /// Charge attempts so far (the next charge's op index).
    pub fn op_count(&self) -> u64 {
        self.inner.lock().expect("mem governor lock").ops
    }

    /// The charge log (every attempt, in order).
    pub fn op_log(&self) -> Vec<ChargeRecord> {
        self.inner.lock().expect("mem governor lock").log.clone()
    }

    /// How many times each fault class fired
    /// (`alloc-fail` / `alloc-burst` / `budget-exceeded`).
    pub fn fired(&self) -> BTreeMap<String, u64> {
        self.inner.lock().expect("mem governor lock").fired.clone()
    }
}

/// RAII receipt for a successful charge: holding it keeps the bytes
/// tracked; dropping it credits them back. Double-crediting is
/// impossible by construction — accounting leaks reduce to leaked
/// receipts, which the torture matrix checks by asserting `used() == 0`
/// after every case.
pub struct MemCharge {
    inner: Arc<Mutex<Inner>>,
    bytes: u64,
}

impl MemCharge {
    /// Bytes this receipt holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        let mut g = self.inner.lock().expect("mem governor lock");
        g.used = g.used.saturating_sub(self.bytes);
    }
}

impl core::fmt::Debug for MemCharge {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MemCharge").field("bytes", &self.bytes).finish()
    }
}
