//! The declarative retry ladder.
//!
//! One solve *session* walks a fixed escalation sequence, reacting to
//! the typed failures of the self-healing layer (PR 1) with
//! progressively more conservative — and more expensive — precision
//! configurations, in the spirit of three-precision AMG fallback
//! hierarchies (Tsai/Beams/Anzt) and dynamically adaptive-precision
//! Krylov methods (Guo/de Sturler):
//!
//! 1. [`Rung::Retry`] — run the caller's mixed-precision configuration
//!    again (transient faults, or faults the in-hierarchy promotion
//!    logic heals on its own);
//! 2. [`Rung::RepairLevel`] — mend the *same* hierarchy in place: an
//!    integrity-sentinel sweep localizes corrupted coefficient planes
//!    and re-truncates just those levels from their retained
//!    high-precision parents (PR 4's ABFT repair), then re-solves —
//!    no rebuild, no promotion;
//! 3. [`Rung::PromoteNarrow`] — rebuild and *eagerly* promote every
//!    16-bit level to FP32 before solving (the dynamic analog of
//!    `shift_levid = 0`);
//! 4. [`Rung::RebuildF32`] — rebuild the whole hierarchy with uniform
//!    FP32 storage;
//! 5. [`Rung::RebuildF64`] — FP64 computation *and* storage, the
//!    last-resort everything-double configuration.
//!
//! Each rung gets a bounded number of attempts with jittered exponential
//! backoff between them; every attempt is recorded in a [`RetryReport`].
//! Deadlines, V-cycle budgets, and cancellation cut across the whole
//! ladder through one [`BudgetGuard`].

use std::time::{Duration, Instant};

use fp16mg_core::{
    MatOp, Mg, MgConfig, PromotionReason, RangeAudit, RecoveryPolicy, RepairEvent, RepairTrigger,
    StoragePolicy,
};
use fp16mg_fp::{Precision, Scalar};
use fp16mg_krylov::{
    bicgstab_ctl, cg_ctl, gmres_ctl, richardson_ctl, SolveError, SolveOptions, SolveResult,
};
use fp16mg_problems::{Problem, SolverKind};
use fp16mg_sgdia::kernels::Par;

use crate::admission::Priority;
use crate::budget::{Budget, BudgetGuard};
use crate::jitter;
use crate::mem::{MemCharge, MemGovernor};
use crate::ring::Ring;
use crate::shed::{DegradeEvent, DegradeProfile, ShedPolicy};

#[cfg(feature = "fault-inject")]
use fp16mg_sgdia::fault::FaultSpec;

/// One rung of the escalation ladder, in climb order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Re-run the caller's configuration unchanged.
    Retry,
    /// Repair corrupted levels of the retained hierarchy in place from
    /// their high-precision parents, then re-solve. Silently skipped —
    /// no attempt is recorded — when there is no retained hierarchy or
    /// nothing was repaired (clean sentinels, or no retained parents).
    RepairLevel,
    /// Rebuild, then eagerly promote every 16-bit level to FP32.
    PromoteNarrow,
    /// Rebuild the hierarchy with uniform FP32 storage.
    RebuildF32,
    /// Rebuild with FP64 computation and storage (last resort).
    RebuildF64,
}

impl Rung {
    /// All rungs in climb order.
    pub const ALL: [Rung; 5] =
        [Rung::Retry, Rung::RepairLevel, Rung::PromoteNarrow, Rung::RebuildF32, Rung::RebuildF64];

    /// Position in the climb order.
    pub fn index(self) -> usize {
        match self {
            Rung::Retry => 0,
            Rung::RepairLevel => 1,
            Rung::PromoteNarrow => 2,
            Rung::RebuildF32 => 3,
            Rung::RebuildF64 => 4,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Rung::Retry => "retry",
            Rung::RepairLevel => "repair-level",
            Rung::PromoteNarrow => "promote16→32",
            Rung::RebuildF32 => "rebuild-f32",
            Rung::RebuildF64 => "rebuild-f64",
        }
    }
}

impl core::fmt::Display for Rung {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-rung attempt caps and backoff shape.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Attempts allowed per rung, indexed by [`Rung::index`]. A zero
    /// skips the rung entirely.
    pub attempts: [usize; 5],
    /// Base backoff slept after a failed attempt.
    pub backoff: Duration,
    /// Exponential growth factor applied per completed attempt.
    pub backoff_factor: f64,
    /// Hard cap on a single backoff sleep.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a
    /// deterministic pseudo-random factor in `[1 − jitter, 1 + jitter]`
    /// so concurrent retries don't stampede in lockstep.
    pub jitter: f64,
    /// Seed for the jitter stream (equal seeds reproduce equal jitter).
    pub seed: u64,
    /// Consult the precision audit before the first attempt: when the
    /// rung-0 hierarchy's own setup audit already shows a 16-bit level
    /// saturating or losing more than [`RetryPolicy::audit_max_underflow`]
    /// of its couplings, the mixed-precision attempt is *known* doomed —
    /// the ladder starts directly at [`Rung::PromoteNarrow`] instead of
    /// burning rung-0 retries on it (repair cannot help either: the loss
    /// is inherent to the format, not a corruption). The evidence lands
    /// in [`RetryReport::audit`].
    pub audit_gate: bool,
    /// Underflow-loss fraction above which the audit gate declares a
    /// 16-bit level doomed. Deliberately looser than a typical `AutoShift`
    /// threshold: the gate only skips work that the audit says cannot
    /// succeed, it does not tune precision.
    pub audit_max_underflow: f64,
    /// Ring capacity of the [`RetryReport`] attempt and repair trails —
    /// the bound that keeps session evidence from growing without limit
    /// in a long-running process.
    pub report_cap: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: [2, 1, 1, 1, 1],
            backoff: Duration::from_millis(2),
            backoff_factor: 2.0,
            max_backoff: Duration::from_millis(50),
            jitter: 0.5,
            seed: 0x5eed_f16a_11ad_de21,
            audit_gate: true,
            audit_max_underflow: 0.25,
            report_cap: Ring::<()>::DEFAULT_CAPACITY,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries anywhere (one attempt on rung 0 only).
    pub fn fail_fast() -> Self {
        RetryPolicy { attempts: [1, 0, 0, 0, 0], ..Self::default() }
    }

    /// The jittered backoff for global attempt number `k` (0-based).
    pub fn backoff_for(&self, k: usize) -> Duration {
        let base = self.backoff.as_secs_f64() * self.backoff_factor.max(1.0).powi(k as i32);
        let unit = jitter::unit(self.seed.wrapping_add(k as u64 + 1)); // [0, 1)
        let scaled = base * (1.0 + self.jitter.clamp(0.0, 1.0) * (2.0 * unit - 1.0));
        Duration::from_secs_f64(scaled.clamp(0.0, self.max_backoff.as_secs_f64()))
    }
}

/// Which Krylov method the session runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolverChoice {
    /// The problem's designated solver (Table 3).
    #[default]
    Auto,
    /// Preconditioned flexible CG.
    Cg,
    /// Preconditioned BiCGStab.
    BiCgStab,
    /// Restarted flexible GMRES.
    Gmres,
    /// Stationary Richardson iteration.
    Richardson,
}

/// A targeted single-event upset: one bit of one stored coefficient
/// plane of one hierarchy level (feature `fault-inject`). The flip lands
/// on the first nonzero entry of the plane, so it always corrupts a real
/// coupling the integrity sentinels must localize.
#[cfg(feature = "fault-inject")]
#[derive(Clone, Copy, Debug)]
pub struct LevelBitFlip {
    /// Hierarchy level whose stored matrix is hit.
    pub level: usize,
    /// Coefficient plane (stencil tap) within the level.
    pub tap: usize,
    /// Bit position, taken modulo the storage width.
    pub bit: u32,
}

/// Deterministic fault injection applied to hierarchies built during a
/// session (feature `fault-inject`): the harness behind the ladder tests
/// and the `repro serve` demo.
#[cfg(feature = "fault-inject")]
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// What to inject (rate-based corruption).
    pub spec: FaultSpec,
    /// Optional targeted upset, applied after `spec`: one bit of the
    /// first nonzero entry of plane `(level, tap)` is flipped — the
    /// silent-data-corruption scenario the ABFT sentinels exist for.
    pub flip: Option<LevelBitFlip>,
    /// The fault is applied to every hierarchy built at rungs *below*
    /// this one, so exactly this rung is the first clean configuration:
    /// `sticky_until = PromoteNarrow` corrupts only the initial mixed
    /// hierarchy, `RebuildF64` keeps corrupting every FP32-computation
    /// build and only the final FP64 rebuild escapes. Each build is hit
    /// exactly once — [`Rung::RepairLevel`] mends the retained
    /// hierarchy without re-exposing it, which is precisely the
    /// transient-upset model.
    pub sticky_until: Rung,
}

/// One resilient solve request: the unit of work the pool schedules.
pub struct SolveRequest {
    /// Display name (scenario label in reports).
    pub name: String,
    /// The problem (owns the assembled matrix).
    pub problem: Problem,
    /// Rung-0 multigrid configuration (normally mixed FP16).
    pub base: MgConfig,
    /// Right-hand side override. `None` (the default) solves against
    /// the problem's canonical [`Problem::rhs`]; a time-stepping driver
    /// sets it to the implicit-step right-hand side, which couples the
    /// previous step's solution. Every ladder rung solves the same
    /// right-hand side.
    pub rhs: Option<Vec<f64>>,
    /// Per-attempt solver options; `max_iters` is additionally clamped
    /// by the session budget's `max_iters`.
    pub opts: SolveOptions,
    /// Session resource bounds.
    pub budget: Budget,
    /// Escalation policy.
    pub policy: RetryPolicy,
    /// Krylov method override.
    pub solver: SolverChoice,
    /// Kernel parallelism for the outer operator (keep `Par::Seq` when
    /// the pool already parallelizes across requests).
    pub par: Par,
    /// Priority class for admission and shedding (defaults to
    /// [`Priority::Batch`]).
    pub priority: Priority,
    /// Problem class for the per-class circuit breaker (defaults to the
    /// problem's name, so one poisoned problem shape trips its own
    /// breaker without touching the others).
    pub class: String,
    /// Memory governor every hierarchy the session builds is charged
    /// against (`"setup"` for the stored levels, `"workspace"` for the
    /// V-cycle arena). Defaults to an unlimited governor; the serve pool
    /// replaces it with its shared budgeted one. A refused charge is a
    /// typed [`SolveError::SetupFailed`] that escalates the ladder like
    /// any other setup failure — never an abort.
    pub governor: MemGovernor,
    /// Fault injection plan (`fault-inject` builds only).
    #[cfg(feature = "fault-inject")]
    pub fault: Option<FaultPlan>,
    /// Panic before doing any work, to exercise the pool's panic
    /// isolation (`fault-inject` builds only).
    #[cfg(feature = "fault-inject")]
    pub panic_in_worker: bool,
}

impl SolveRequest {
    /// A request with default options, unlimited budget, and the default
    /// retry policy.
    pub fn new(name: impl Into<String>, problem: Problem, base: MgConfig) -> Self {
        let class = problem.name.to_string();
        SolveRequest {
            name: name.into(),
            problem,
            base,
            rhs: None,
            opts: SolveOptions::default(),
            budget: Budget::unlimited(),
            policy: RetryPolicy::default(),
            solver: SolverChoice::Auto,
            par: Par::Seq,
            priority: Priority::default(),
            class,
            governor: MemGovernor::unlimited(),
            #[cfg(feature = "fault-inject")]
            fault: None,
            #[cfg(feature = "fault-inject")]
            panic_in_worker: false,
        }
    }

    /// Applies a degraded-mode profile in place and returns the typed
    /// trail of every downgrade actually performed (an event is only
    /// recorded when the knob really moved — a request already looser
    /// than the policy's ceiling yields no `TolRelaxed`, an already-tiny
    /// iteration cap no `ItersCapped`).
    ///
    /// [`DegradeProfile::Reduced`] loosens the tolerance and caps outer
    /// iterations. [`DegradeProfile::Economy`] additionally switches
    /// storage to FP16-until-`shift_levid`, imposes a hard V-cycle
    /// budget, and disables the FP64-rebuild ladder rung — the most
    /// expensive recovery has no place in shed-window work. A storage
    /// downgrade that fails validation (e.g. `shift_levid` beyond
    /// `max_levels`) is skipped rather than propagated: degradation is
    /// best-effort, never a new failure mode.
    pub fn apply_profile(
        &mut self,
        profile: DegradeProfile,
        policy: &ShedPolicy,
    ) -> Vec<DegradeEvent> {
        let mut events = Vec::new();
        if profile == DegradeProfile::Full {
            return events;
        }
        let iter_cap = match profile {
            DegradeProfile::Reduced => policy.reduced_max_iters,
            DegradeProfile::Economy => policy.economy_max_iters,
            DegradeProfile::Full => unreachable!("handled above"),
        };
        let degraded = self.opts.degrade(policy.tol_relax, policy.tol_ceiling, iter_cap);
        if degraded.tol > self.opts.tol {
            events.push(DegradeEvent::TolRelaxed { from: self.opts.tol, to: degraded.tol });
        }
        if degraded.max_iters < self.opts.max_iters {
            events.push(DegradeEvent::ItersCapped {
                from: self.opts.max_iters,
                to: degraded.max_iters,
            });
        }
        self.opts = degraded;
        if profile == DegradeProfile::Economy {
            if let Ok(cfg) = self.base.economize(policy.economy_shift_levid) {
                if cfg.storage != self.base.storage {
                    events.push(DegradeEvent::StorageEconomized {
                        shift_levid: policy.economy_shift_levid,
                    });
                }
                self.base = cfg;
            }
            let cap = policy.economy_max_vcycles;
            let capped = self.budget.max_vcycles.map_or(cap, |b| b.min(cap));
            if self.budget.max_vcycles != Some(capped) {
                self.budget.max_vcycles = Some(capped);
                events.push(DegradeEvent::VcyclesCapped { cap: capped });
            }
            let f64_rung = Rung::RebuildF64.index();
            if self.policy.attempts[f64_rung] > 0 {
                self.policy.attempts[f64_rung] = 0;
                events.push(DegradeEvent::LadderTrimmed { rung: Rung::RebuildF64.label() });
            }
        }
        events
    }
}

/// One recorded ladder attempt.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// The rung this attempt ran on.
    pub rung: Rung,
    /// Attempt number within the rung (0-based).
    pub try_no: usize,
    /// True when this attempt converged (it is then the last).
    pub converged: bool,
    /// Outer iterations performed.
    pub iters: usize,
    /// Final relative residual.
    pub rel: f64,
    /// Storage promotions the hierarchy performed during the attempt
    /// (eager rung promotions and internal self-healing both count).
    pub promotions: usize,
    /// Localized level repairs performed during the attempt — by the
    /// in-solve integrity hooks, or by the [`Rung::RepairLevel`] sweep
    /// that preceded the re-solve.
    pub repairs: usize,
    /// Typed failure, when the attempt did not converge.
    pub error: Option<SolveError>,
    /// Backoff slept *after* this attempt.
    pub backoff: Duration,
    /// Wall time of the attempt (setup + solve).
    pub seconds: f64,
}

/// The precision-audit evidence a session's gate decision was based on.
#[derive(Clone, Debug, Default)]
pub struct AuditSnapshot {
    /// `(level, audit)` for every 16-bit-stored level of the rung-0
    /// hierarchy, finest first.
    pub levels: Vec<(usize, RangeAudit)>,
    /// True when the gate skipped [`Rung::Retry`] and started the ladder
    /// at [`Rung::PromoteNarrow`].
    pub skipped_retry: bool,
    /// Human-readable justification when `skipped_retry` is set.
    pub reason: Option<String>,
}

/// Every rung taken by a session, in order. Both trails are
/// ring-bounded (capacity [`RetryPolicy::report_cap`]): the most recent
/// evidence survives, older entries are counted and evicted.
#[derive(Clone, Debug, Default)]
pub struct RetryReport {
    /// The most recent attempts, in execution order.
    pub attempts: Ring<Attempt>,
    /// The pre-solve precision audit, when the gate ran (see
    /// [`RetryPolicy::audit_gate`]).
    pub audit: Option<AuditSnapshot>,
    /// The most recent localized level repairs, in execution order
    /// (in-solve integrity hooks and the [`Rung::RepairLevel`] sweeps
    /// both land here).
    pub repairs: Ring<RepairEvent>,
}

impl RetryReport {
    /// An empty report whose trails keep at most `cap` entries each.
    pub fn with_capacity(cap: usize) -> Self {
        RetryReport { attempts: Ring::new(cap), audit: None, repairs: Ring::new(cap) }
    }

    /// The rung of each attempt, in order (e.g. `[Retry, Retry,
    /// PromoteNarrow]`).
    pub fn rung_sequence(&self) -> Vec<Rung> {
        self.attempts.iter().map(|a| a.rung).collect()
    }

    /// The highest rung reached, if any attempt ran.
    pub fn final_rung(&self) -> Option<Rung> {
        self.attempts.last().map(|a| a.rung)
    }

    /// Compact `retry→repair-level→promote16→32` display string.
    pub fn summary(&self) -> String {
        self.attempts.iter().map(|a| a.rung.label()).collect::<Vec<_>>().join("→")
    }
}

/// Outcome of one resilient solve session.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// `Ok` with the converged attempt's solver result, or the last
    /// typed error once the ladder (or the budget) is exhausted.
    pub result: Result<SolveResult, SolveError>,
    /// The solution vector of the converged attempt.
    pub solution: Option<Vec<f64>>,
    /// Every attempt taken.
    pub report: RetryReport,
    /// Outer iterations summed over all attempts.
    pub iters: usize,
    /// V-cycle applications summed over all attempts (integrity
    /// verification sweeps charge this counter too).
    pub vcycles: usize,
    /// Session wall time, backoffs included.
    pub seconds: f64,
}

impl SessionOutcome {
    /// True when the session converged.
    pub fn converged(&self) -> bool {
        self.result.is_ok()
    }
}

/// The rung-0 hierarchy, kept alive across [`Rung::Retry`] attempts so
/// [`Rung::RepairLevel`] can mend it in place instead of rebuilding.
/// Escalation to [`Rung::PromoteNarrow`] or beyond drops it.
struct Retained {
    mg: Option<Mg<f32>>,
    /// Charge receipts for `mg`'s stored levels and workspace arena;
    /// dropped (credited back) together with the hierarchy. `None` while
    /// `mg` is uncharged — a prebuilt hierarchy is charged on first use
    /// by the rung-0 attempt.
    charges: Option<HierarchyCharges>,
    /// True once the fault plan has been applied to `mg`: each build is
    /// corrupted exactly once (re-flipping the same bit would undo it).
    #[cfg(feature = "fault-inject")]
    injected: bool,
}

/// Receipts tying a live hierarchy's bytes to the session governor.
struct HierarchyCharges {
    _setup: MemCharge,
    _workspace: MemCharge,
}

/// Charges a freshly built (or adopted) hierarchy against the request's
/// governor: stored matrix bytes as `"setup"`, the preallocated V-cycle
/// arena as `"workspace"`. A refused charge surfaces as a typed
/// [`SolveError::SetupFailed`], which the ladder treats exactly like a
/// failed build — skip the rung and escalate.
fn charge_hierarchy<Pr: Scalar>(
    req: &SolveRequest,
    mg: &Mg<Pr>,
) -> Result<HierarchyCharges, SolveError> {
    let mem_err = |e: crate::mem::MemError| SolveError::SetupFailed { message: e.to_string() };
    let setup = req.governor.try_charge("setup", mg.info().matrix_bytes as u64).map_err(mem_err)?;
    let workspace =
        req.governor.try_charge("workspace", mg.workspace_bytes() as u64).map_err(mem_err)?;
    Ok(HierarchyCharges { _setup: setup, _workspace: workspace })
}

/// What one solver attempt produced.
struct AttemptOutput {
    result: SolveResult,
    /// Promotions performed during this attempt (delta, not cumulative).
    promotions: usize,
    /// Level repairs performed during this attempt.
    repairs: Vec<RepairEvent>,
    x: Vec<f64>,
}

/// Runs one solve request through the retry ladder under its budget.
///
/// The session is synchronous and cooperative: it returns a typed
/// [`SessionOutcome`] for every way a solve can end — convergence,
/// ladder exhaustion ([`SolveError::Unconverged`] or the last numerical
/// failure), deadline ([`SolveError::DeadlineExceeded`]), cancellation
/// ([`SolveError::Cancelled`]), or V-cycle budget exhaustion — and never
/// panics on solver failures. (Panics from bugs are contained by
/// [`crate::pool::run_batch`], not here.)
pub fn run_session(req: &SolveRequest) -> SessionOutcome {
    run_session_with(req, None)
}

/// [`run_session`] with an optionally prebuilt rung-0 hierarchy, the
/// entry point behind the serve pool's hierarchy cache: a `prebuilt`
/// hierarchy seeds the retained rung-0 state (skipping the gate's own
/// setup) but still passes the audit gate's doomed-level check — a
/// cached hierarchy whose audit shows inherent format loss escalates
/// exactly like a freshly built one.
pub fn run_session_with(req: &SolveRequest, prebuilt: Option<Mg<f32>>) -> SessionOutcome {
    #[cfg(feature = "fault-inject")]
    if req.panic_in_worker {
        panic!("injected worker panic (fault-inject): request '{}'", req.name);
    }

    let t0 = Instant::now();
    let mut guard = BudgetGuard::arm(req.budget.clone());
    let mut report = RetryReport::with_capacity(req.policy.report_cap);
    let mut last_err: Option<SolveError> = None;
    let mut last_rel = f64::NAN;
    let mut global_attempt = 0usize;
    let mut retained = Retained {
        mg: prebuilt,
        charges: None,
        #[cfg(feature = "fault-inject")]
        injected: false,
    };

    // --- Pre-solve audit gate: don't burn retries on a hierarchy whose
    // own setup audit already shows a doomed 16-bit level. The gate's
    // build is not wasted — a healthy hierarchy is handed to the first
    // rung-0 attempt as-is (and a prebuilt one is audited in place, no
    // build at all).
    let mut start_rung = 0usize;
    if req.policy.audit_gate && req.policy.attempts[Rung::Retry.index()] > 0 {
        if retained.mg.is_none() {
            // A setup failure here is not terminal: the first rung-0
            // attempt repeats the setup and reports the typed error
            // through the normal attempt bookkeeping.
            retained.mg = Mg::<f32>::setup(&req.problem.matrix, &req.base).ok();
        }
        if let Some(mg) = retained.mg.as_ref() {
            let levels: Vec<(usize, RangeAudit)> = mg
                .info()
                .levels
                .iter()
                .enumerate()
                .filter(|(_, l)| matches!(l.precision, Precision::F16 | Precision::BF16))
                .filter_map(|(i, l)| l.audit.clone().map(|a| (i, a)))
                .collect();
            let threshold = req.policy.audit_max_underflow;
            let doomed = levels.iter().find(|(_, a)| {
                a.saturate > 0 || a.source_non_finite > 0 || a.underflow_loss_fraction() > threshold
            });
            let reason = doomed.map(|(i, a)| {
                if a.saturate > 0 || a.source_non_finite > 0 {
                    format!(
                        "level {i} audit: {} saturating / {} non-finite entries in 16-bit storage",
                        a.saturate, a.source_non_finite
                    )
                } else {
                    format!(
                        "level {i} audit: underflow loss {:.1}% exceeds gate threshold {:.1}%",
                        a.underflow_loss_fraction() * 100.0,
                        threshold * 100.0
                    )
                }
            });
            let skipped_retry = reason.is_some();
            if skipped_retry {
                // Inherent format loss, not corruption — repair cannot
                // help, so the ladder starts past RepairLevel too.
                start_rung = Rung::PromoteNarrow.index();
                retained.mg = None;
                retained.charges = None;
            }
            report.audit = Some(AuditSnapshot { levels, skipped_retry, reason });
        }
    }

    'ladder: for rung in Rung::ALL.into_iter().skip(start_rung) {
        let mut rung_try = 0usize;
        while rung_try < req.policy.attempts[rung.index()] {
            // Session-level pre-checks: a deadline or cancellation that
            // fired between attempts (e.g. during backoff) ends the
            // ladder before any setup work is spent.
            let done = guard.iters_done();
            if let Err(e) = fp16mg_krylov::SolveControl::check(&mut guard, done) {
                last_err = Some(e);
                break 'ladder;
            }
            let Some(iter_cap) = guard.clamp_iters(req.opts.max_iters) else {
                last_err =
                    Some(SolveError::Unconverged { iters: guard.iters_done(), rel: last_rel });
                break 'ladder;
            };
            let mut opts = req.opts.clone();
            opts.max_iters = iter_cap;

            let at0 = Instant::now();
            let attempt = run_rung_attempt(req, rung, &opts, &mut guard, &mut retained);
            let seconds = at0.elapsed().as_secs_f64();

            match attempt {
                // The rung has nothing to do (RepairLevel with no
                // retained hierarchy or nothing repaired): move on
                // without recording an attempt.
                Ok(None) => continue 'ladder,
                Err(setup_err) => {
                    global_attempt += 1;
                    rung_try += 1;
                    // Same config ⇒ same setup failure: skip the rest of
                    // this rung and escalate.
                    report.attempts.push(Attempt {
                        rung,
                        try_no: rung_try - 1,
                        converged: false,
                        iters: 0,
                        rel: last_rel,
                        promotions: 0,
                        repairs: 0,
                        error: Some(setup_err.clone()),
                        backoff: Duration::ZERO,
                        seconds,
                    });
                    last_err = Some(setup_err);
                    continue 'ladder;
                }
                Ok(Some(out)) => {
                    global_attempt += 1;
                    rung_try += 1;
                    let AttemptOutput { result, promotions, repairs, x } = out;
                    guard.charge_iters(result.iters);
                    if result.final_rel_residual.is_finite() {
                        last_rel = result.final_rel_residual;
                    }
                    let converged = result.converged();
                    let error = if converged {
                        None
                    } else {
                        Some(result.failure().unwrap_or(SolveError::Unconverged {
                            iters: result.iters,
                            rel: result.final_rel_residual,
                        }))
                    };
                    let more_attempts_possible =
                        !converged && error.as_ref().map(|e| e.retryable()).unwrap_or(false);
                    let backoff = if more_attempts_possible {
                        let b = req.policy.backoff_for(global_attempt - 1);
                        match guard.remaining() {
                            Some(left) => b.min(left),
                            None => b,
                        }
                    } else {
                        Duration::ZERO
                    };
                    report.attempts.push(Attempt {
                        rung,
                        try_no: rung_try - 1,
                        converged,
                        iters: result.iters,
                        rel: result.final_rel_residual,
                        promotions,
                        repairs: repairs.len(),
                        error: error.clone(),
                        backoff,
                        seconds,
                    });
                    report.repairs.extend(repairs);
                    if converged {
                        let iters = guard.iters_done();
                        let vcycles = guard.vcycles();
                        return SessionOutcome {
                            result: Ok(result),
                            solution: Some(x),
                            report,
                            iters,
                            vcycles,
                            seconds: t0.elapsed().as_secs_f64(),
                        };
                    }
                    let e = error.expect("non-converged attempt always carries an error");
                    let final_err = !e.retryable();
                    last_err = Some(e);
                    if final_err {
                        break 'ladder;
                    }
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                }
            }
        }
    }

    SessionOutcome {
        result: Err(last_err
            .unwrap_or(SolveError::Unconverged { iters: guard.iters_done(), rel: last_rel })),
        solution: None,
        report,
        iters: guard.iters_done(),
        vcycles: guard.vcycles(),
        seconds: t0.elapsed().as_secs_f64(),
    }
}

/// Obtains the hierarchy for `rung` (retained, repaired, or freshly
/// built) and runs one solver attempt under the guard. `Ok(None)` means
/// the rung does not apply and no attempt was made; `Err` is a typed
/// setup failure.
fn run_rung_attempt(
    req: &SolveRequest,
    rung: Rung,
    opts: &SolveOptions,
    guard: &mut BudgetGuard,
    retained: &mut Retained,
) -> Result<Option<AttemptOutput>, SolveError> {
    let setup_err = |e: fp16mg_core::SetupError| SolveError::SetupFailed { message: e.to_string() };
    match rung {
        Rung::Retry => {
            // The audit gate's healthy build seeds the retained
            // hierarchy; it survives failed attempts so RepairLevel can
            // mend it in place later.
            if retained.mg.is_none() {
                retained.mg =
                    Some(Mg::<f32>::setup(&req.problem.matrix, &req.base).map_err(setup_err)?);
                #[cfg(feature = "fault-inject")]
                {
                    retained.injected = false;
                }
            }
            // Invariant: a retained hierarchy is always charged. A
            // prebuilt (cached) or gate-built hierarchy is charged here
            // on first use; a refused charge drops it and escalates —
            // the rebuild rungs charge their own builds at later op
            // indices, so an injected one-shot fault resolves there.
            if retained.charges.is_none() {
                let mg = retained.mg.as_ref().expect("retained hierarchy was just ensured");
                match charge_hierarchy(req, mg) {
                    Ok(c) => retained.charges = Some(c),
                    Err(e) => {
                        retained.mg = None;
                        return Err(e);
                    }
                }
            }
            let mg = retained.mg.as_mut().expect("retained hierarchy was just ensured");
            #[cfg(feature = "fault-inject")]
            if !retained.injected {
                retained.injected = true;
                inject_if_armed(req, rung, mg);
            }
            let bases = (mg.promotions().len(), mg.repairs().len());
            Ok(Some(attempt_with(req, mg, opts, guard, bases)))
        }
        Rung::RepairLevel => {
            // Cheapest escalation: a sentinel sweep over the *retained*
            // rung-0 hierarchy localizes corrupted coefficient planes
            // and re-truncates just those levels from their retained
            // high-precision parents — no rebuild. The re-solve runs
            // when the sweep repaired something now, or when the
            // in-solve integrity hooks repaired during the failed retry
            // (the mended hierarchy deserves one clean shot before the
            // ladder escalates to a rebuild).
            let Some(mg) = retained.mg.as_mut() else { return Ok(None) };
            let bases = (mg.promotions().len(), mg.repairs().len());
            let repaired_in_solve = !mg.repairs().is_empty();
            let swept = mg.verify_and_repair(RepairTrigger::Requested);
            if swept.is_empty() && !repaired_in_solve {
                return Ok(None);
            }
            Ok(Some(attempt_with(req, mg, opts, guard, bases)))
        }
        Rung::PromoteNarrow => {
            // A rebuild abandons the repairable hierarchy for good
            // (and credits its bytes back before building the next one).
            retained.mg = None;
            retained.charges = None;
            // Promotion needs recovery bookkeeping (retained level
            // sources), whatever the caller's policy says.
            let mut cfg = req.base.clone();
            cfg.recovery =
                RecoveryPolicy { enabled: true, max_promotions: usize::MAX, ..cfg.recovery };
            let mut mg = Mg::<f32>::setup(&req.problem.matrix, &cfg).map_err(setup_err)?;
            let narrow: Vec<usize> = mg
                .info()
                .levels
                .iter()
                .enumerate()
                .filter(|(_, l)| matches!(l.precision, Precision::F16 | Precision::BF16))
                .map(|(i, _)| i)
                .collect();
            for lev in narrow {
                mg.promote_level(lev, PromotionReason::Manual);
            }
            let _charges = charge_hierarchy(req, &mg)?;
            #[cfg(feature = "fault-inject")]
            inject_if_armed(req, rung, &mut mg);
            Ok(Some(attempt_with(req, &mut mg, opts, guard, (0, 0))))
        }
        Rung::RebuildF32 => {
            retained.mg = None;
            retained.charges = None;
            let mut cfg = req.base.clone();
            cfg.storage = StoragePolicy::Uniform(Precision::F32);
            let mut mg = Mg::<f32>::setup(&req.problem.matrix, &cfg).map_err(setup_err)?;
            let _charges = charge_hierarchy(req, &mg)?;
            #[cfg(feature = "fault-inject")]
            inject_if_armed(req, rung, &mut mg);
            Ok(Some(attempt_with(req, &mut mg, opts, guard, (0, 0))))
        }
        Rung::RebuildF64 => {
            retained.mg = None;
            retained.charges = None;
            let mut cfg = req.base.clone();
            cfg.storage = StoragePolicy::Uniform(Precision::F64);
            let mut mg = Mg::<f64>::setup(&req.problem.matrix, &cfg).map_err(setup_err)?;
            let _charges = charge_hierarchy(req, &mg)?;
            #[cfg(feature = "fault-inject")]
            inject_if_armed(req, rung, &mut mg);
            Ok(Some(attempt_with(req, &mut mg, opts, guard, (0, 0))))
        }
    }
}

/// Adopts the hierarchy's cycle counter and runs the chosen solver once.
/// `bases` are the hierarchy's promotion/repair counts at attempt start,
/// so a retained hierarchy reports per-attempt deltas.
fn attempt_with<Pr: Scalar>(
    req: &SolveRequest,
    mg: &mut Mg<Pr>,
    opts: &SolveOptions,
    guard: &mut BudgetGuard,
    (promotions_base, repairs_base): (usize, usize),
) -> AttemptOutput {
    guard.adopt_cycles(mg.cycle_counter());
    let op = MatOp::new(&req.problem.matrix, req.par);
    let b = match &req.rhs {
        Some(b) => b.clone(),
        None => req.problem.rhs(),
    };
    let mut x = vec![0.0f64; req.problem.matrix.rows()];
    let solver = match (req.solver, req.problem.solver) {
        (SolverChoice::Cg, _) | (SolverChoice::Auto, SolverKind::Cg) => SolverChoice::Cg,
        (SolverChoice::Gmres, _) | (SolverChoice::Auto, SolverKind::Gmres) => SolverChoice::Gmres,
        (choice, _) => choice,
    };
    let result = match solver {
        SolverChoice::Cg => cg_ctl(&op, mg, &b, &mut x, opts, guard),
        SolverChoice::Gmres => gmres_ctl(&op, mg, &b, &mut x, opts, guard),
        SolverChoice::BiCgStab => bicgstab_ctl(&op, mg, &b, &mut x, opts, guard),
        SolverChoice::Richardson => richardson_ctl(&op, mg, &b, &mut x, opts, guard),
        SolverChoice::Auto => unreachable!("Auto resolved above"),
    };
    AttemptOutput {
        result,
        promotions: mg.promotions().len().saturating_sub(promotions_base),
        repairs: mg.repairs()[repairs_base.min(mg.repairs().len())..].to_vec(),
        x,
    }
}

/// Applies the request's fault plan to a freshly built hierarchy when
/// the plan is armed for this rung (`rung < sticky_until`).
#[cfg(feature = "fault-inject")]
fn inject_if_armed<Pr: Scalar>(req: &SolveRequest, rung: Rung, mg: &mut Mg<Pr>) {
    if let Some(plan) = &req.fault {
        if rung.index() < plan.sticky_until.index() {
            inject(mg, plan);
        }
    }
}

/// Corrupts the finest 16-bit level (or level 0 when every level is
/// already wide) per the plan's rate spec, then applies the targeted
/// bit flip if one is planned. Guarantees at least one non-finite entry
/// for `inf`-flavored specs, so tiny test matrices still trip detection.
#[cfg(feature = "fault-inject")]
fn inject<Pr: Scalar>(mg: &mut Mg<Pr>, plan: &FaultPlan) {
    let lev = mg
        .info()
        .levels
        .iter()
        .position(|l| matches!(l.precision, Precision::F16 | Precision::BF16))
        .unwrap_or(0);
    if let Some(stored) = mg.stored_mut(lev) {
        let rep = stored.inject_faults(&plan.spec);
        if plan.spec.inf_rate > 0.0 && rep.infs == 0 {
            stored.inject_inf_at(0, 0);
        }
    }
    if let Some(flip) = plan.flip {
        if let Some(stored) = mg.stored_mut(flip.level) {
            stored.inject_bit_flip_tap(flip.tap, flip.bit);
        }
    }
}
