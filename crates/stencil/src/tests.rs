use crate::{Pattern, Tap};

#[test]
fn standard_pattern_sizes() {
    assert_eq!(Pattern::p7().len(), 7);
    assert_eq!(Pattern::p15().len(), 15);
    assert_eq!(Pattern::p19().len(), 19);
    assert_eq!(Pattern::p27().len(), 27);
}

#[test]
fn pattern_names() {
    assert_eq!(Pattern::p7().name(), "3d7");
    assert_eq!(Pattern::p15().name(), "3d15");
    assert_eq!(Pattern::p19().name(), "3d19");
    assert_eq!(Pattern::p27().name(), "3d27");
    // Block patterns keep the spatial name.
    assert_eq!(Pattern::p7().with_components(3).name(), "3d7");
}

#[test]
fn by_name_round_trip() {
    for n in ["3d7", "3d15", "3d19", "3d27"] {
        assert_eq!(Pattern::by_name(n).unwrap().name(), n);
    }
    assert!(Pattern::by_name("3d5").is_none());
}

#[test]
fn lower_patterns_match_paper_fig7() {
    // Fig. 7 benchmarks SpTRSV on 3d4, 3d10, 3d14: the lower triangular
    // (incl. diagonal) parts of 3d7, 3d19, 3d27.
    assert_eq!(Pattern::p7().lower_with_diag().len(), 4);
    assert_eq!(Pattern::p19().lower_with_diag().len(), 10);
    assert_eq!(Pattern::p27().lower_with_diag().len(), 14);
    assert_eq!(Pattern::p7().lower_with_diag().name(), "3d4");
    assert_eq!(Pattern::p19().lower_with_diag().name(), "3d10");
    assert_eq!(Pattern::p27().lower_with_diag().name(), "3d14");
}

#[test]
fn split_partitions_taps() {
    for p in [Pattern::p7(), Pattern::p15(), Pattern::p19(), Pattern::p27()] {
        let (l, d, u) = p.split();
        assert_eq!(l.len() + d.len() + u.len(), p.len());
        assert_eq!(d.len(), 1);
        assert_eq!(l.len(), u.len(), "standard patterns are structurally symmetric");
        for t in l.taps() {
            assert_eq!(t.spatial_sign(), -1);
        }
        for t in u.taps() {
            assert_eq!(t.spatial_sign(), 1);
        }
    }
}

#[test]
fn block_pattern_has_r_squared_taps_per_offset() {
    let p = Pattern::p7().with_components(3);
    assert_eq!(p.len(), 7 * 9);
    assert_eq!(p.components(), 3);
    assert_eq!(p.spatial_len(), 7);
    // The diagonal block of the split holds all 9 component pairs.
    let (_, d, _) = p.split();
    assert_eq!(d.len(), 9);
    // Scalar diagonals exist for each component.
    assert_eq!(p.diagonal_indices().len(), 3);
    for (c, &i) in p.diagonal_indices().iter().enumerate() {
        let t = p.taps()[i];
        assert!(t.is_diagonal());
        assert_eq!(t.cin as usize, c);
    }
}

#[test]
fn taps_sorted_and_unique() {
    for p in [
        Pattern::p7(),
        Pattern::p27(),
        Pattern::p19().with_components(2),
        Pattern::p7().lower_with_diag(),
    ] {
        for w in p.taps().windows(2) {
            assert!(w[0].key() < w[1].key(), "taps out of order: {:?} {:?}", w[0], w[1]);
        }
        for (i, &t) in p.taps().iter().enumerate() {
            assert_eq!(p.tap_index(t), Some(i));
        }
    }
}

#[test]
fn transpose_involution_and_symmetry() {
    for p in [Pattern::p7(), Pattern::p15(), Pattern::p19(), Pattern::p27()] {
        assert_eq!(p.transpose(), p, "standard patterns are structurally symmetric");
    }
    let l = Pattern::p27().lower_with_diag();
    let u = l.transpose();
    assert_ne!(l, u);
    assert_eq!(u.transpose(), l);
    // Lᵀ has the upper taps plus the diagonal.
    assert_eq!(u.len(), 14);
    assert!(u.taps().iter().all(|t| t.spatial_sign() >= 0));
}

#[test]
fn tap_transpose_swaps_components() {
    let t = Tap::at_comp(1, -1, 0, 2, 0);
    let tt = t.transpose();
    assert_eq!((tt.dx, tt.dy, tt.dz), (-1, 1, 0));
    assert_eq!((tt.cout, tt.cin), (0, 2));
    assert_eq!(tt.transpose(), t);
}

#[test]
fn spatial_sign_is_row_major_order() {
    // (dz, dy, dx) lexicographic: dz dominates.
    assert_eq!(Tap::at(1, 1, -1).spatial_sign(), -1);
    assert_eq!(Tap::at(-1, 0, 1).spatial_sign(), 1);
    assert_eq!(Tap::at(-1, 0, 0).spatial_sign(), -1);
    assert_eq!(Tap::at(0, 0, 0).spatial_sign(), 0);
    assert_eq!(Tap::at_comp(0, 0, 0, 1, 0).spatial_sign(), 0);
}

#[test]
fn dedup_in_constructor() {
    let p = Pattern::new(vec![Tap::at(0, 0, 0), Tap::at(0, 0, 0), Tap::at(1, 0, 0)]);
    assert_eq!(p.len(), 2);
}

#[test]
fn radius() {
    assert_eq!(Pattern::p7().radius(), 1);
    assert_eq!(Pattern::p27().radius(), 1);
    assert_eq!(Pattern::new(vec![Tap::at(2, 0, -1)]).radius(), 2);
    assert_eq!(Pattern::new(vec![]).radius(), 0);
}

mod proptests {
    use crate::{Pattern, Tap};
    use fp16mg_testkit::{check, Rng};

    fn arb_tap(rng: &mut Rng) -> Tap {
        Tap::at_comp(
            rng.usize_range(0, 3) as i32 - 1,
            rng.usize_range(0, 3) as i32 - 1,
            rng.usize_range(0, 3) as i32 - 1,
            rng.usize_range(0, 3) as u8,
            rng.usize_range(0, 3) as u8,
        )
    }

    fn arb_taps(rng: &mut Rng) -> Vec<Tap> {
        (0..rng.usize_range(1, 30)).map(|_| arb_tap(rng)).collect()
    }

    #[test]
    fn prop_transpose_involution() {
        check("prop_transpose_involution", |rng| {
            let p = Pattern::new(arb_taps(rng));
            assert_eq!(p.transpose().transpose(), p);
        });
    }

    #[test]
    fn prop_split_partitions() {
        check("prop_split_partitions", |rng| {
            let p = Pattern::new(arb_taps(rng));
            let (l, d, u) = p.split();
            assert_eq!(l.len() + d.len() + u.len(), p.len());
            // Lower and upper are mirror images under transpose for
            // component-closed patterns; at minimum their taps classify
            // correctly.
            for t in l.taps() {
                assert_eq!(t.spatial_sign(), -1);
            }
            for t in u.taps() {
                assert_eq!(t.spatial_sign(), 1);
            }
            for t in d.taps() {
                assert!(t.is_center());
            }
        });
    }

    #[test]
    fn prop_tap_index_total() {
        check("prop_tap_index_total", |rng| {
            let p = Pattern::new(arb_taps(rng));
            for (i, &t) in p.taps().iter().enumerate() {
                assert_eq!(p.tap_index(t), Some(i));
            }
        });
    }

    #[test]
    fn prop_sorted_strictly() {
        check("prop_sorted_strictly", |rng| {
            let p = Pattern::new(arb_taps(rng));
            for w in p.taps().windows(2) {
                assert!(w[0].key() < w[1].key());
            }
        });
    }
}

#[test]
fn from_name_reports_the_valid_names() {
    for n in Pattern::NAMES {
        assert_eq!(Pattern::from_name(n).unwrap().name(), n);
    }
    let err = Pattern::from_name("3d5").unwrap_err();
    assert_eq!(err.name, "3d5");
    let msg = err.to_string();
    assert!(msg.contains("unknown pattern"), "{msg}");
    for n in Pattern::NAMES {
        assert!(msg.contains(n), "{msg} must list {n}");
    }
}
