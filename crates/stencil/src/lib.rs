//! Stencil patterns for structured-grid matrices.
//!
//! A *structured matrix* (paper §3.2) is one whose nonzero pattern is the
//! same small set of neighbor offsets at every grid point, so it can be
//! stored in the SG-DIA format without per-element index arrays. This crate
//! defines those offset sets.
//!
//! * Scalar PDEs use the classic 3-D patterns: [`Pattern::p7`] (7-point
//!   Laplacian), [`Pattern::p15`] (faces + corners, linear elasticity),
//!   [`Pattern::p19`] (faces + edges), and [`Pattern::p27`] (full 3×3×3
//!   cube, the Galerkin-coarsened closure of all of the above).
//! * Vector PDEs with `r` components per grid point replicate every spatial
//!   offset over all `r × r` component pairs ([`Pattern::with_components`]),
//!   which is how the paper's rhd-3T (r = 3), oil-4C (r = 4) and solid-3D
//!   (r = 3) problems are laid out.
//! * Sparse triangular solves operate on the lower/upper triangular parts;
//!   [`Pattern::split`] produces them. For 3d7/3d19/3d27 the lower parts
//!   (including the diagonal) are the paper's 3d4/3d10/3d14 patterns of
//!   Figure 7.
//!
//! Taps are kept sorted in row-major order (`dz`, then `dy`, then `dx`,
//! then component pair), which is also the lexicographic order of the
//! column indices they reference — the natural order for Gauss–Seidel
//! splitting.

#![warn(missing_docs)]
mod pattern;
mod tap;

pub use pattern::{Pattern, UnknownPattern};
pub use tap::Tap;

#[cfg(test)]
mod tests;
