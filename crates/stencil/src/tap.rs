//! A single stencil tap: spatial offset plus component pair.

/// One nonzero position of a structured stencil.
///
/// For a matrix row associated with grid cell `(i, j, k)` and output
/// component `cout`, this tap references the unknown at cell
/// `(i+dx, j+dy, k+dz)`, input component `cin`. Scalar PDEs always have
/// `cin == cout == 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tap {
    /// Offset along the fastest-varying axis.
    pub dx: i32,
    /// Offset along the middle axis.
    pub dy: i32,
    /// Offset along the slowest-varying axis.
    pub dz: i32,
    /// Output (row) component.
    pub cout: u8,
    /// Input (column) component.
    pub cin: u8,
}

impl Tap {
    /// Scalar tap at a spatial offset.
    pub const fn at(dx: i32, dy: i32, dz: i32) -> Self {
        Tap { dx, dy, dz, cout: 0, cin: 0 }
    }

    /// Tap at a spatial offset with an explicit component pair.
    pub const fn at_comp(dx: i32, dy: i32, dz: i32, cout: u8, cin: u8) -> Self {
        Tap { dx, dy, dz, cout, cin }
    }

    /// The tap of the transposed matrix: spatial offset negated, component
    /// pair swapped.
    pub const fn transpose(self) -> Self {
        Tap { dx: -self.dx, dy: -self.dy, dz: -self.dz, cout: self.cin, cin: self.cout }
    }

    /// True when the tap references the same grid cell (the diagonal block;
    /// for scalar problems, the matrix diagonal itself).
    pub const fn is_center(self) -> bool {
        self.dx == 0 && self.dy == 0 && self.dz == 0
    }

    /// True for the exact scalar diagonal: same cell *and* same component.
    pub const fn is_diagonal(self) -> bool {
        self.is_center() && self.cin == self.cout
    }

    /// Row-major ordering key: `(dz, dy, dx)` ranks taps by the memory
    /// position of the column they touch; the component pair breaks ties.
    pub const fn key(self) -> (i32, i32, i32, u8, u8) {
        (self.dz, self.dy, self.dx, self.cout, self.cin)
    }

    /// Sign of the spatial offset in row-major order: `-1` if the tap
    /// points to an earlier cell, `0` for the same cell, `+1` for a later
    /// cell. This is the triangular classification used by Gauss–Seidel:
    /// the whole `r×r` block at offset zero counts as "diagonal".
    pub const fn spatial_sign(self) -> i32 {
        if self.dz != 0 {
            if self.dz < 0 {
                -1
            } else {
                1
            }
        } else if self.dy != 0 {
            if self.dy < 0 {
                -1
            } else {
                1
            }
        } else if self.dx != 0 {
            if self.dx < 0 {
                -1
            } else {
                1
            }
        } else {
            0
        }
    }
}
