//! Stencil pattern: an ordered, deduplicated set of taps.

use crate::Tap;
use std::collections::HashMap;

/// An ordered set of stencil taps shared by every row of a structured
/// matrix.
///
/// The number of taps equals the number of SG-DIA "diagonals" the matrix
/// stores. Taps are sorted by [`Tap::key`] and unique; construction
/// enforces both.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    taps: Vec<Tap>,
    components: usize,
    index: HashMap<Tap, usize>,
}

impl Pattern {
    /// Builds a pattern from arbitrary taps: deduplicates, sorts, and
    /// infers the component count from the largest component id.
    pub fn new(mut taps: Vec<Tap>) -> Self {
        taps.sort_by_key(|t| t.key());
        taps.dedup();
        let components = taps.iter().map(|t| (t.cin.max(t.cout) as usize) + 1).max().unwrap_or(1);
        let index = taps.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        Pattern { taps, components, index }
    }

    /// The 7-point pattern (center + 6 faces), `3d7` in the paper.
    pub fn p7() -> Self {
        let mut taps = vec![Tap::at(0, 0, 0)];
        for d in [-1i32, 1] {
            taps.push(Tap::at(d, 0, 0));
            taps.push(Tap::at(0, d, 0));
            taps.push(Tap::at(0, 0, d));
        }
        Pattern::new(taps)
    }

    /// The 15-point pattern (center + 6 faces + 8 corners), `3d15`; the
    /// pattern of the paper's solid-3D elasticity discretization.
    pub fn p15() -> Self {
        let mut taps = Pattern::p7().taps;
        for dz in [-1i32, 1] {
            for dy in [-1i32, 1] {
                for dx in [-1i32, 1] {
                    taps.push(Tap::at(dx, dy, dz));
                }
            }
        }
        Pattern::new(taps)
    }

    /// The 19-point pattern (center + 6 faces + 12 edges), `3d19`; the
    /// pattern of the paper's weather problem.
    pub fn p19() -> Self {
        let mut taps = Vec::new();
        for dz in -1i32..=1 {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dx.abs() + dy.abs() + dz.abs() <= 2 {
                        taps.push(Tap::at(dx, dy, dz));
                    }
                }
            }
        }
        Pattern::new(taps)
    }

    /// The full 27-point pattern (3×3×3 cube), `3d27`; the pattern of the
    /// laplace27 benchmark and the closure of Galerkin coarsening.
    pub fn p27() -> Self {
        let mut taps = Vec::new();
        for dz in -1i32..=1 {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    taps.push(Tap::at(dx, dy, dz));
                }
            }
        }
        Pattern::new(taps)
    }

    /// The names [`Pattern::by_name`] and [`Pattern::from_name`]
    /// recognize, in tap-count order.
    pub const NAMES: [&'static str; 4] = ["3d7", "3d15", "3d19", "3d27"];

    /// Looks a named pattern up ("3d7", "3d15", "3d19", "3d27").
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "3d7" => Some(Self::p7()),
            "3d15" => Some(Self::p15()),
            "3d19" => Some(Self::p19()),
            "3d27" => Some(Self::p27()),
            _ => None,
        }
    }

    /// [`Pattern::by_name`] with a typed error that names the valid
    /// patterns — for call sites that surface the failure to a user
    /// instead of unwrapping.
    ///
    /// # Errors
    /// [`UnknownPattern`] carrying the rejected name.
    pub fn from_name(name: &str) -> Result<Self, UnknownPattern> {
        Self::by_name(name).ok_or_else(|| UnknownPattern { name: name.to_string() })
    }

    /// Replicates a scalar pattern over all `r × r` component pairs,
    /// producing the block pattern of an `r`-component vector PDE.
    ///
    /// # Panics
    /// Panics if the pattern already has multiple components or `r == 0`.
    pub fn with_components(&self, r: usize) -> Self {
        assert!(r >= 1, "component count must be positive");
        assert_eq!(self.components, 1, "pattern already has components");
        assert!(r <= u8::MAX as usize + 1, "too many components");
        let mut taps = Vec::with_capacity(self.taps.len() * r * r);
        for t in &self.taps {
            for cout in 0..r as u8 {
                for cin in 0..r as u8 {
                    taps.push(Tap::at_comp(t.dx, t.dy, t.dz, cout, cin));
                }
            }
        }
        Pattern::new(taps)
    }

    /// Number of taps (= SG-DIA diagonals).
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// True when the pattern has no taps.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Number of components per grid cell.
    pub fn components(&self) -> usize {
        self.components
    }

    /// The taps in row-major order.
    pub fn taps(&self) -> &[Tap] {
        &self.taps
    }

    /// Index of a tap within the pattern, if present.
    pub fn tap_index(&self, tap: Tap) -> Option<usize> {
        self.index.get(&tap).copied()
    }

    /// Indices of the exact scalar diagonal taps, one per component (in
    /// component order).
    ///
    /// # Panics
    /// Panics if any component lacks a diagonal tap.
    pub fn diagonal_indices(&self) -> Vec<usize> {
        (0..self.components as u8)
            .map(|c| {
                self.tap_index(Tap::at_comp(0, 0, 0, c, c))
                    .expect("pattern has no diagonal tap for some component")
            })
            .collect()
    }

    /// Splits into (strict lower, diagonal block, strict upper) by spatial
    /// offset sign; within the diagonal block all `r × r` component pairs
    /// stay together (block Gauss–Seidel convention).
    pub fn split(&self) -> (Pattern, Pattern, Pattern) {
        let mut lower = Vec::new();
        let mut diag = Vec::new();
        let mut upper = Vec::new();
        for &t in &self.taps {
            match t.spatial_sign() {
                -1 => lower.push(t),
                0 => diag.push(t),
                _ => upper.push(t),
            }
        }
        (Pattern::new(lower), Pattern::new(diag), Pattern::new(upper))
    }

    /// The lower-triangular pattern including the diagonal block: 3d7 →
    /// 3d4, 3d19 → 3d10, 3d27 → 3d14 (Fig. 7's SpTRSV patterns).
    pub fn lower_with_diag(&self) -> Pattern {
        let taps = self.taps.iter().copied().filter(|t| t.spatial_sign() <= 0).collect();
        Pattern::new(taps)
    }

    /// The transposed pattern (offsets negated, component pairs swapped).
    /// Symmetric patterns map to themselves.
    pub fn transpose(&self) -> Pattern {
        Pattern::new(self.taps.iter().map(|t| t.transpose()).collect())
    }

    /// Maximum absolute spatial offset along any axis (the "radius"; 1 for
    /// all the standard patterns, possibly larger for RAP products before
    /// re-closure).
    pub fn radius(&self) -> i32 {
        self.taps.iter().map(|t| t.dx.abs().max(t.dy.abs()).max(t.dz.abs())).max().unwrap_or(0)
    }

    /// Conventional name: `"3d{n}"` with the spatial tap count (component
    /// pairs collapse onto their spatial offset), e.g. `3d27` for a
    /// 3-component pattern with 27 spatial offsets.
    pub fn name(&self) -> String {
        let mut offsets: Vec<(i32, i32, i32)> =
            self.taps.iter().map(|t| (t.dz, t.dy, t.dx)).collect();
        offsets.sort_unstable();
        offsets.dedup();
        format!("3d{}", offsets.len())
    }

    /// Number of distinct spatial offsets.
    pub fn spatial_len(&self) -> usize {
        let mut offsets: Vec<(i32, i32, i32)> =
            self.taps.iter().map(|t| (t.dz, t.dy, t.dx)).collect();
        offsets.sort_unstable();
        offsets.dedup();
        offsets.len()
    }
}

/// A pattern name [`Pattern::from_name`] did not recognize. The display
/// form lists the valid names, so surfacing it verbatim is already a
/// helpful message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownPattern {
    /// The rejected name.
    pub name: String,
}

impl core::fmt::Display for UnknownPattern {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unknown pattern {:?}, valid names are {}", self.name, Pattern::NAMES.join(", "))
    }
}

impl std::error::Error for UnknownPattern {}
