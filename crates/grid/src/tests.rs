use crate::{Grid3, Wavefronts};

#[test]
fn indexing_round_trips() {
    let g = Grid3::new(5, 4, 3);
    assert_eq!(g.cells(), 60);
    assert_eq!(g.unknowns(), 60);
    for (cell, i, j, k) in g.iter_cells() {
        assert_eq!(g.cell(i, j, k), cell);
        assert_eq!(g.coords(cell), (i, j, k));
    }
}

#[test]
fn iter_cells_is_index_order() {
    let g = Grid3::new(3, 2, 2);
    let cells: Vec<usize> = g.iter_cells().map(|(c, ..)| c).collect();
    assert_eq!(cells, (0..12).collect::<Vec<_>>());
}

#[test]
fn unknown_indexing_with_components() {
    let g = Grid3::with_components(4, 4, 4, 3);
    assert_eq!(g.unknowns(), 192);
    assert_eq!(g.unknown(0, 0, 0, 0), 0);
    assert_eq!(g.unknown(0, 0, 0, 2), 2);
    assert_eq!(g.unknown(1, 0, 0, 0), 3);
    assert_eq!(g.unknown(1, 2, 3, 1), g.cell(1, 2, 3) * 3 + 1);
}

#[test]
fn stride_matches_indexing() {
    let g = Grid3::new(7, 5, 3);
    let (i, j, k) = (3, 2, 1);
    let base = g.cell(i, j, k) as i64;
    for (dx, dy, dz) in [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (1, -1, 1)] {
        assert!(g.contains_offset(i, j, k, dx, dy, dz));
        let target = g.cell(
            (i as i64 + dx as i64) as usize,
            (j as i64 + dy as i64) as usize,
            (k as i64 + dz as i64) as usize,
        ) as i64;
        assert_eq!(base + g.stride(dx, dy, dz), target);
    }
}

#[test]
fn contains_offset_boundary() {
    let g = Grid3::new(4, 4, 4);
    assert!(!g.contains_offset(0, 0, 0, -1, 0, 0));
    assert!(!g.contains_offset(3, 0, 0, 1, 0, 0));
    assert!(!g.contains_offset(0, 3, 3, 0, 1, 0));
    assert!(!g.contains_offset(0, 0, 3, 0, 0, 1));
    assert!(g.contains_offset(3, 3, 3, -1, -1, -1));
    assert!(g.contains_offset(0, 0, 0, 1, 1, 1));
}

#[test]
fn coarsening_rounds_up() {
    let g = Grid3::new(9, 8, 7);
    let c = g.coarsen();
    assert_eq!((c.nx, c.ny, c.nz), (5, 4, 4));
    let c2 = c.coarsen();
    assert_eq!((c2.nx, c2.ny, c2.nz), (3, 2, 2));
    // Components survive coarsening.
    let gv = Grid3::with_components(8, 8, 8, 4).coarsen();
    assert_eq!(gv.components, 4);
    // A 1-cell grid coarsens to itself and is coarsest.
    let tiny = Grid3::new(1, 1, 1);
    assert_eq!(tiny.coarsen(), tiny);
    assert!(tiny.is_coarsest(0));
    assert!(Grid3::cube(2).is_coarsest(100));
    assert!(!Grid3::cube(16).is_coarsest(100));
}

#[test]
fn z_slabs_cover_and_balance() {
    let g = Grid3::new(4, 4, 10);
    for parts in [1, 2, 3, 4, 10, 20] {
        let slabs = g.z_slabs(parts);
        assert!(slabs.len() <= parts.max(1));
        let mut next = 0;
        for s in &slabs {
            assert_eq!(s.start, next);
            next = s.end;
            assert!(!s.is_empty());
        }
        assert_eq!(next, 10);
        let min = slabs.iter().map(|s| s.len()).min().unwrap();
        let max = slabs.iter().map(|s| s.len()).max().unwrap();
        assert!(max - min <= 1, "slabs unbalanced: {slabs:?}");
    }
}

#[test]
fn wavefronts_cover_every_cell_once() {
    let g = Grid3::new(5, 4, 3);
    let w = Wavefronts::build(&g);
    assert_eq!(w.len(), g.cells());
    assert_eq!(w.num_planes(), 5 + 4 + 3 - 2);
    let mut seen = vec![false; g.cells()];
    for plane in w.forward() {
        for &c in plane {
            assert!(!seen[c as usize], "cell {c} scheduled twice");
            seen[c as usize] = true;
        }
    }
    assert!(seen.iter().all(|&s| s));
}

#[test]
fn wavefront_planes_are_independent() {
    // Within a plane, no cell may be reachable from another via a
    // radius-1 lower-triangular tap.
    let g = Grid3::new(4, 4, 4);
    let w = Wavefronts::build(&g);
    for p in 0..w.num_planes() {
        let plane = w.plane(p);
        for &c in plane {
            let (i, j, k) = g.coords(c as usize);
            assert_eq!(i + j + k, p, "cell in wrong plane");
        }
    }
}

#[test]
fn wavefront_respects_dependencies() {
    // Every lower neighbor (dx+dy+dz < 0 with radius-1 taps of a 7-point
    // stencil) of a plane-p cell lives in an earlier plane.
    let g = Grid3::new(6, 5, 4);
    let w = Wavefronts::build(&g);
    let mut plane_of = vec![0usize; g.cells()];
    for p in 0..w.num_planes() {
        for &c in w.plane(p) {
            plane_of[c as usize] = p;
        }
    }
    for (cell, i, j, k) in g.iter_cells() {
        for (dx, dy, dz) in [(-1, 0, 0), (0, -1, 0), (0, 0, -1)] {
            if g.contains_offset(i, j, k, dx, dy, dz) {
                let nb = (cell as i64 + g.stride(dx, dy, dz)) as usize;
                assert!(plane_of[nb] < plane_of[cell]);
            }
        }
    }
}

#[test]
fn backward_is_reverse_of_forward() {
    let g = Grid3::new(3, 3, 3);
    let w = Wavefronts::build(&g);
    let fwd: Vec<&[u32]> = w.forward().collect();
    let mut bwd: Vec<&[u32]> = w.backward().collect();
    bwd.reverse();
    assert_eq!(fwd, bwd);
}

#[test]
#[should_panic(expected = "positive")]
fn zero_extent_panics() {
    Grid3::new(0, 4, 4);
}

#[test]
fn semicoarsening_axes() {
    let g = Grid3::new(9, 8, 7);
    assert_eq!(g.coarsen_axes((true, true, true)), g.coarsen());
    let cz = g.coarsen_axes((false, false, true));
    assert_eq!((cz.nx, cz.ny, cz.nz), (9, 8, 4));
    let cxy = g.coarsen_axes((true, true, false));
    assert_eq!((cxy.nx, cxy.ny, cxy.nz), (5, 4, 7));
    // No-axis coarsening is the identity.
    assert_eq!(g.coarsen_axes((false, false, false)), g);
    // Components survive.
    let gv = Grid3::with_components(8, 8, 8, 3).coarsen_axes((false, true, false));
    assert_eq!(gv.components, 3);
    assert_eq!((gv.nx, gv.ny, gv.nz), (8, 4, 8));
}

mod decomp_tests {
    use crate::decomp::{vcycle_halo_bytes, Decomposition};
    use crate::Grid3;

    #[test]
    fn decomposition_covers_grid_exactly() {
        let g = Grid3::new(17, 13, 9);
        for np in [1usize, 2, 3, 4, 6, 8, 12, 16] {
            let d = Decomposition::new(g, np);
            assert_eq!(d.num_ranks(), np.min(d.num_ranks()));
            let total: usize = d.boxes().iter().map(|b| b.cells()).sum();
            assert_eq!(total, g.cells(), "np={np}");
            assert!(d.imbalance() < 2.0, "np={np}: {}", d.imbalance());
        }
    }

    #[test]
    fn near_cubic_factorization_preferred() {
        let g = Grid3::cube(64);
        let d = Decomposition::new(g, 8);
        assert_eq!(d.procs(), (2, 2, 2), "8 ranks on a cube should be 2x2x2");
        let d = Decomposition::new(g, 64);
        assert_eq!(d.procs(), (4, 4, 4));
    }

    #[test]
    fn halo_cells_scale_with_surface() {
        let g = Grid3::cube(32);
        let d1 = Decomposition::new(g, 1);
        // A single rank owning everything has no halo.
        assert_eq!(d1.halo_cells_per_sweep(1), 0);
        let d8 = Decomposition::new(g, 8);
        // 2x2x2 boxes of 16^3: each has 3 interior faces exposed; halo
        // shell > 3*16*16 per box.
        let per_rank = d8.halo_cells_per_sweep(1) / 8;
        assert!(per_rank >= 3 * 16 * 16, "{per_rank}");
        // More ranks, more surface.
        let d64 = Decomposition::new(g, 64);
        assert!(d64.halo_cells_per_sweep(1) > d8.halo_cells_per_sweep(1));
    }

    #[test]
    fn halo_bytes_track_components_and_precision() {
        let g = Grid3::with_components(16, 16, 16, 3);
        let d = Decomposition::new(g, 8);
        let b4 = d.halo_bytes_per_sweep(1, 4);
        let b8 = d.halo_bytes_per_sweep(1, 8);
        assert_eq!(2 * b4, b8);
        let gs = Grid3::new(16, 16, 16);
        let ds = Decomposition::new(gs, 8);
        assert_eq!(ds.halo_bytes_per_sweep(1, 4) * 3, b4);
    }

    #[test]
    fn vcycle_halo_dominated_by_finest_level() {
        let bytes = vcycle_halo_bytes(&Grid3::cube(64), 8, 5, 4);
        assert_eq!(bytes.len(), 5);
        // Finest-level halo dominates but coarse levels' shrink slower
        // than their volume (surface-to-volume grows) — the Fig. 10
        // communication-dominance effect.
        assert!(bytes[0].1 > bytes[1].1);
        let vol_ratio = 8.0; // volume shrinks 8x per level
        let halo_ratio = bytes[0].1 as f64 / bytes[1].1 as f64;
        assert!(
            halo_ratio < vol_ratio,
            "halo shrinks slower than volume: {halo_ratio} vs {vol_ratio}"
        );
    }
}
