//! Box domain decomposition and halo-exchange accounting.
//!
//! The paper's experiments run StructMG under MPI with "load-balance
//! process partitions" (§6.3), and its Fig. 10 analysis hinges on the
//! communication/computation balance: "after optimization, the
//! communication part becomes more dominant in E2E time" — FP16 shrinks
//! the compute share but not the halo traffic. This module provides the
//! decomposition substrate for that analysis on a shared-memory host:
//!
//! * [`Decomposition`] — a near-cubic process grid over a [`Grid3`],
//!   balanced boxes (the "load-balance partitions"),
//! * per-box halo accounting for a stencil radius: which bytes a rank
//!   would exchange per sweep, and the aggregate communication volume a
//!   V-cycle incurs across the hierarchy.
//!
//! Kernels in this repository run rayon-parallel over the shared address
//! space (no actual message passing), so the exchange volumes are
//! *modeled*, not timed — exactly what the strong-scaling discussion
//! needs to reproduce in shape on a machine without an interconnect.

use crate::Grid3;

/// One rank's box: half-open cell ranges per axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoxRange {
    /// `x0..x1` cells along x.
    pub x: (usize, usize),
    /// `y0..y1` cells along y.
    pub y: (usize, usize),
    /// `z0..z1` cells along z.
    pub z: (usize, usize),
}

impl BoxRange {
    /// Number of interior cells.
    pub fn cells(&self) -> usize {
        (self.x.1 - self.x.0) * (self.y.1 - self.y.0) * (self.z.1 - self.z.0)
    }

    /// Extents per axis.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.x.1 - self.x.0, self.y.1 - self.y.0, self.z.1 - self.z.0)
    }

    /// Number of halo cells a stencil of the given radius reads from
    /// neighboring boxes (clipped to the global grid): the surface shell
    /// of thickness `radius` around the box.
    pub fn halo_cells(&self, grid: &Grid3, radius: usize) -> usize {
        let lo = |a: usize, r: usize| a.saturating_sub(r);
        let hi = |a: usize, n: usize, r: usize| (a + r).min(n);
        let ex = (
            lo(self.x.0, radius),
            hi(self.x.1, grid.nx, radius),
            lo(self.y.0, radius),
            hi(self.y.1, grid.ny, radius),
            lo(self.z.0, radius),
            hi(self.z.1, grid.nz, radius),
        );
        let expanded = (ex.1 - ex.0) * (ex.3 - ex.2) * (ex.5 - ex.4);
        expanded - self.cells()
    }
}

/// A balanced decomposition of a grid into `px × py × pz` boxes.
#[derive(Clone, Debug)]
pub struct Decomposition {
    grid: Grid3,
    procs: (usize, usize, usize),
    boxes: Vec<BoxRange>,
}

/// Splits `n` cells into `p` near-equal contiguous ranges.
fn split(n: usize, p: usize) -> Vec<(usize, usize)> {
    let p = p.clamp(1, n.max(1));
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

impl Decomposition {
    /// Builds a near-cubic process grid for `nprocs` ranks: factors are
    /// chosen greedily to keep boxes as cubic as possible (minimum
    /// surface, hence minimum halo traffic — the "load-balance
    /// partitions" of §6.3).
    pub fn new(grid: Grid3, nprocs: usize) -> Self {
        let nprocs = nprocs.max(1);
        // Enumerate factorizations px*py*pz = nprocs, pick minimal
        // aggregate surface.
        let mut best = (nprocs, 1, 1);
        let mut best_score = f64::INFINITY;
        for px in 1..=nprocs {
            if !nprocs.is_multiple_of(px) {
                continue;
            }
            let rem = nprocs / px;
            for py in 1..=rem {
                if !rem.is_multiple_of(py) {
                    continue;
                }
                let pz = rem / py;
                if px > grid.nx || py > grid.ny || pz > grid.nz {
                    continue;
                }
                let (bx, by, bz) = (
                    grid.nx as f64 / px as f64,
                    grid.ny as f64 / py as f64,
                    grid.nz as f64 / pz as f64,
                );
                // Surface area per box ~ halo volume per rank.
                let score = 2.0 * (bx * by + by * bz + bx * bz);
                if score < best_score {
                    best_score = score;
                    best = (px, py, pz);
                }
            }
        }
        let (px, py, pz) = best;
        let xs = split(grid.nx, px);
        let ys = split(grid.ny, py);
        let zs = split(grid.nz, pz);
        let mut boxes = Vec::with_capacity(px * py * pz);
        for &z in &zs {
            for &y in &ys {
                for &x in &xs {
                    boxes.push(BoxRange { x, y, z });
                }
            }
        }
        Decomposition { grid, procs: (px, py, pz), boxes }
    }

    /// The process-grid shape `(px, py, pz)`.
    pub fn procs(&self) -> (usize, usize, usize) {
        self.procs
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.boxes.len()
    }

    /// The boxes, z-major rank order.
    pub fn boxes(&self) -> &[BoxRange] {
        &self.boxes
    }

    /// Load imbalance: `max cells / mean cells` over ranks (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let max = self.boxes.iter().map(BoxRange::cells).max().unwrap_or(0) as f64;
        let mean = self.grid.cells() as f64 / self.num_ranks() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Total halo cells exchanged per stencil sweep across all ranks (a
    /// cell counted once per receiving rank).
    pub fn halo_cells_per_sweep(&self, radius: usize) -> usize {
        self.boxes.iter().map(|b| b.halo_cells(&self.grid, radius)).sum()
    }

    /// Bytes exchanged per sweep when halo values are `bytes_per_value`
    /// wide and each cell carries `components` unknowns. Halo vectors are
    /// computation-precision data (guideline 4): lowering the *matrix*
    /// storage precision does not shrink this, which is the paper's
    /// Fig. 10 argument for why communication grows relatively dominant.
    pub fn halo_bytes_per_sweep(&self, radius: usize, bytes_per_value: usize) -> usize {
        self.halo_cells_per_sweep(radius) * self.grid.components * bytes_per_value
    }
}

/// Models one V-cycle's communication volume over a coarsening hierarchy:
/// per level, smoothing + residual exchange (3 sweeps' worth with ν₁ =
/// ν₂ = 1) plus one transfer exchange, halo radius 1, vectors in the
/// computation precision. Returns `(level, bytes)` pairs, finest first.
pub fn vcycle_halo_bytes(
    finest: &Grid3,
    nprocs: usize,
    levels: usize,
    compute_bytes: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut g = *finest;
    for l in 0..levels {
        let d = Decomposition::new(g, nprocs);
        let per_sweep = d.halo_bytes_per_sweep(1, compute_bytes);
        out.push((l, per_sweep * 4));
        let c = g.coarsen();
        if c == g {
            break;
        }
        g = c;
    }
    out
}
