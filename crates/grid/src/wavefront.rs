//! Hyperplane (wavefront) schedules for triangular stencil solves.
//!
//! A lower-triangular structured stencil (taps with row-major spatial sign
//! ≤ 0 and |offset| ≤ 1 per axis) only couples a cell to cells with a
//! strictly smaller `i + j + k`. All cells on the hyperplane
//! `i + j + k = p` are therefore independent once planes `< p` are done,
//! which is the classic parallel schedule for stencil SpTRSV.

use crate::Grid3;

/// A precomputed hyperplane schedule: cells grouped by `i + j + k`.
#[derive(Clone, Debug)]
pub struct Wavefronts {
    /// Cell indices, ordered plane by plane.
    cells: Vec<u32>,
    /// `planes[p]..planes[p+1]` indexes the cells of plane `p` in `cells`.
    planes: Vec<u32>,
}

impl Wavefronts {
    /// Builds the schedule for a grid.
    ///
    /// # Panics
    /// Panics if the grid has more than `u32::MAX` cells.
    pub fn build(grid: &Grid3) -> Self {
        let n = grid.cells();
        assert!(n <= u32::MAX as usize, "grid too large for wavefront schedule");
        let nplanes = grid.nx + grid.ny + grid.nz - 2;
        // Counting sort by plane index.
        let mut counts = vec![0u32; nplanes + 1];
        for (_, i, j, k) in grid.iter_cells() {
            counts[i + j + k + 1] += 1;
        }
        for p in 0..nplanes {
            counts[p + 1] += counts[p];
        }
        let planes = counts.clone();
        let mut cells = vec![0u32; n];
        let mut cursor = counts;
        for (cell, i, j, k) in grid.iter_cells() {
            let p = i + j + k;
            cells[cursor[p] as usize] = cell as u32;
            cursor[p] += 1;
        }
        Wavefronts { cells, planes }
    }

    /// Number of planes (`nx + ny + nz - 2`).
    pub fn num_planes(&self) -> usize {
        self.planes.len() - 1
    }

    /// The cells of one plane; mutually independent under any triangular
    /// split of a radius-1 stencil.
    pub fn plane(&self, p: usize) -> &[u32] {
        let lo = self.planes[p] as usize;
        let hi = self.planes[p + 1] as usize;
        &self.cells[lo..hi]
    }

    /// Iterates planes in forward (lower-solve) order.
    pub fn forward(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.num_planes()).map(move |p| self.plane(p))
    }

    /// Iterates planes in backward (upper-solve) order.
    pub fn backward(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.num_planes()).rev().map(move |p| self.plane(p))
    }

    /// Total number of scheduled cells (equals `grid.cells()`).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}
