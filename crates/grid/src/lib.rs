//! Structured 3-D grids: indexing, coarsening, and parallel schedules.
//!
//! The paper's target problems are PDEs discretized on logically rectangular
//! grids (§3.2), where a grid cell is addressed by `(i, j, k)` and unknowns
//! are `components` values per cell. This crate provides:
//!
//! * [`Grid3`] — dimensions, row-major linear indexing, and the ×2 full
//!   coarsening used by the multigrid hierarchy;
//! * [`Wavefronts`] — hyperplane scheduling (`i + j + k = const`) for
//!   parallel sparse triangular solves, the "sophisticated parallel
//!   strategy" §5.1 alludes to for SpTRSV;
//! * [`Decomposition`] — the MPI-style box partition of §6.3 with
//!   halo-exchange volume accounting (the Fig. 10 communication model);
//! * slab partitioning helpers used by the rayon-parallel kernels.

#![warn(missing_docs)]
pub mod decomp;
mod grid3;
mod wavefront;

pub use decomp::{BoxRange, Decomposition};
pub use grid3::Grid3;
pub use wavefront::Wavefronts;

#[cfg(test)]
mod tests;
