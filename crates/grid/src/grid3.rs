//! Logical 3-D structured grid.

/// A logically rectangular grid of `nx × ny × nz` cells with `components`
/// unknowns per cell.
///
/// Cells are numbered row-major with `x` fastest:
/// `cell(i, j, k) = (k * ny + j) * nx + i`. Unknowns are numbered
/// cell-major: `unknown = cell * components + c`, which keeps the `r × r`
/// block of a vector PDE contiguous — the layout SysPFMG-style system
/// multigrids use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid3 {
    /// Cells along the fastest-varying axis.
    pub nx: usize,
    /// Cells along the middle axis.
    pub ny: usize,
    /// Cells along the slowest-varying axis.
    pub nz: usize,
    /// Unknowns per cell (1 for scalar PDEs).
    pub components: usize,
}

impl Grid3 {
    /// Scalar grid of the given extents.
    ///
    /// # Panics
    /// Panics if any extent is zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self::with_components(nx, ny, nz, 1)
    }

    /// Cubic scalar grid `n × n × n`.
    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Grid with `components` unknowns per cell.
    ///
    /// # Panics
    /// Panics if any extent or the component count is zero.
    pub fn with_components(nx: usize, ny: usize, nz: usize, components: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid extents must be positive");
        assert!(components > 0, "component count must be positive");
        Grid3 { nx, ny, nz, components }
    }

    /// Number of grid cells.
    #[inline]
    pub const fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Number of unknowns (`cells × components`); the paper's `#dof`.
    #[inline]
    pub const fn unknowns(&self) -> usize {
        self.cells() * self.components
    }

    /// Linear index of cell `(i, j, k)`.
    #[inline]
    pub const fn cell(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.ny + j) * self.nx + i
    }

    /// Linear index of unknown `(i, j, k, c)`.
    #[inline]
    pub const fn unknown(&self, i: usize, j: usize, k: usize, c: usize) -> usize {
        self.cell(i, j, k) * self.components + c
    }

    /// Inverse of [`Grid3::cell`].
    #[inline]
    pub const fn coords(&self, cell: usize) -> (usize, usize, usize) {
        let i = cell % self.nx;
        let j = (cell / self.nx) % self.ny;
        let k = cell / (self.nx * self.ny);
        (i, j, k)
    }

    /// True when `(i + dx, j + dy, k + dz)` stays inside the grid.
    #[inline]
    pub const fn contains_offset(
        &self,
        i: usize,
        j: usize,
        k: usize,
        dx: i32,
        dy: i32,
        dz: i32,
    ) -> bool {
        let ii = i as i64 + dx as i64;
        let jj = j as i64 + dy as i64;
        let kk = k as i64 + dz as i64;
        ii >= 0
            && jj >= 0
            && kk >= 0
            && (ii as usize) < self.nx
            && (jj as usize) < self.ny
            && (kk as usize) < self.nz
    }

    /// Signed linear cell stride of a spatial offset: moving by
    /// `(dx, dy, dz)` changes the cell index by this amount (valid only in
    /// the grid interior; boundary validity is checked separately).
    #[inline]
    pub const fn stride(&self, dx: i32, dy: i32, dz: i32) -> i64 {
        dx as i64 + (dy as i64) * self.nx as i64 + (dz as i64) * (self.nx * self.ny) as i64
    }

    /// The grid after one step of full coarsening (×2 in every direction,
    /// keeping cells with even coordinates; extents round up so boundary
    /// cells survive).
    pub fn coarsen(&self) -> Grid3 {
        self.coarsen_axes((true, true, true))
    }

    /// Coarsening restricted to the selected axes — the PFMG-style
    /// *semicoarsening* used for strongly anisotropic operators, where
    /// only the strongly coupled direction(s) are coarsened.
    pub fn coarsen_axes(&self, axes: (bool, bool, bool)) -> Grid3 {
        Grid3 {
            nx: if axes.0 { self.nx.div_ceil(2) } else { self.nx },
            ny: if axes.1 { self.ny.div_ceil(2) } else { self.ny },
            nz: if axes.2 { self.nz.div_ceil(2) } else { self.nz },
            components: self.components,
        }
    }

    /// True when the grid is too small to coarsen further.
    pub fn is_coarsest(&self, min_cells: usize) -> bool {
        self.cells() <= min_cells || (self.nx <= 2 && self.ny <= 2 && self.nz <= 2)
    }

    /// Iterates over all cells in index order, yielding `(cell, i, j, k)`.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, usize, usize, usize)> + '_ {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        (0..nz).flat_map(move |k| {
            (0..ny).flat_map(move |j| (0..nx).map(move |i| ((k * ny + j) * nx + i, i, j, k)))
        })
    }

    /// Splits `0..nz` into at most `parts` contiguous z-slabs of
    /// near-equal size, for rayon parallelism across planes.
    pub fn z_slabs(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        let parts = parts.clamp(1, self.nz.max(1));
        let base = self.nz / parts;
        let extra = self.nz % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0;
        for p in 0..parts {
            let len = base + usize::from(p < extra);
            out.push(start..start + len);
            start += len;
        }
        out
    }
}
