//! Counting-allocator proof of the memory-resilience contract's
//! steady-state clause: after setup, a V-cycle-preconditioned CG
//! iteration performs **zero** heap allocations.
//!
//! The whole test binary runs under a `#[global_allocator]` wrapper
//! that counts every `alloc`/`realloc`/`alloc_zeroed`. A
//! [`SolveControl`] hook samples the counter at the top of every CG
//! iteration; after a short warmup (first iterations may touch
//! lazily-grown scratch) the delta between consecutive iterations must
//! be exactly zero. The paper's real-world problems (oil, rhd, weather)
//! are all checked — their hierarchies differ in depth, stencil, and
//! storage split, so a regression in any level's arena shows up here.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fp16mg_core::{MatOp, Mg, MgConfig};
use fp16mg_krylov::{cg_ctl_in, Preconditioner, SolveOptions, SolveScratch, StopReason};
use fp16mg_problems::ProblemKind;
use fp16mg_sgdia::kernels::Par;
use fp16mg_sgdia::SgDia;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Iterations treated as warmup before the zero-allocation clause is
/// enforced (the first preconditioner application may fault in lazily
/// sized state; by the third iteration everything must be steady).
const WARMUP_ITERS: usize = 3;
const MEASURED_ITERS: usize = 7;

/// CG needs an SPD operator, and the oil problem's matrix is upwind-skewed
/// (Table 3 pairs it with GMRES; even its symmetric part is indefinite
/// where the coefficient field drops downstream). This symmetrizes
/// (`(A + Aᵀ)/2`) and then floors the diagonal to strict row dominance —
/// keeping the stencil, SOA layout, coefficient distribution, and
/// hierarchy depth, which is everything the allocation contract depends
/// on — so the CG leg runs its full length. Weather stays fully
/// nonsymmetric below and covers that code path.
fn spd_variant(a: &SgDia<f64>) -> SgDia<f64> {
    let at = a.transpose();
    let mut out = a.clone();
    let taps: Vec<_> = a.pattern().taps().to_vec();
    for (t, tap) in taps.iter().enumerate() {
        let tt = at.pattern().tap_index(*tap).expect("tap present in transposed pattern");
        for cell in 0..a.grid().cells() {
            out.set(cell, t, (a.get(cell, t) + at.get(cell, tt)) * 0.5);
        }
    }
    let dt = a.pattern().diagonal_indices()[0];
    for cell in 0..a.grid().cells() {
        let off: f64 = (0..taps.len()).filter(|&t| t != dt).map(|t| out.get(cell, t).abs()).sum();
        if out.get(cell, dt) <= off {
            out.set(cell, dt, off + 1.0e-2);
        }
    }
    out
}

/// Runs CG on `kind` with the paper's D16 hierarchy and asserts every
/// post-warmup iteration allocates nothing.
fn assert_zero_alloc_iterations(kind: ProblemKind) {
    let p = kind.build(10);
    let matrix = if kind == ProblemKind::Oil { spd_variant(&p.matrix) } else { p.matrix.clone() };
    let mut mg = Mg::<f32>::setup(&matrix, &MgConfig::d16()).expect(p.name);
    let op = MatOp::new(&matrix, Par::Seq);
    let b = p.rhs();
    let mut x = vec![0.0f64; p.matrix.rows()];
    let mut scratch = SolveScratch::new(p.matrix.rows());
    // tol 0 and health off: the solve must run to max_iters so every
    // sampled iteration is a full V-cycle + CG step, regardless of how
    // fast the problem converges.
    let opts = SolveOptions {
        tol: 0.0,
        max_iters: WARMUP_ITERS + MEASURED_ITERS,
        health: fp16mg_krylov::HealthPolicy::disabled(),
        record_history: false,
        ..Default::default()
    };

    // The control samples the allocation counter at the top of every
    // iteration; the samples vector is preallocated so the sampling
    // itself cannot allocate.
    let mut samples: Vec<u64> = Vec::with_capacity(opts.max_iters + 1);
    let mut ctl = |_it: usize| {
        samples.push(alloc_count());
        Ok(())
    };
    let result = cg_ctl_in(&op, &mut mg, &b, &mut x, &opts, &mut ctl, &mut scratch);
    assert_eq!(
        result.reason,
        StopReason::MaxIters,
        "{}: expected a full-length run, got {:?} after {} iters (breakdown: {:?})",
        p.name,
        result.reason,
        result.iters,
        result.breakdown
    );
    assert!(
        samples.len() >= WARMUP_ITERS + MEASURED_ITERS,
        "{}: only {} iterations sampled",
        p.name,
        samples.len()
    );
    for w in samples.windows(2).enumerate().skip(WARMUP_ITERS) {
        let (i, pair) = w;
        let delta = pair[1] - pair[0];
        assert_eq!(
            delta,
            0,
            "{}: iteration {} performed {delta} heap allocation(s); the steady-state \
             V-cycle + CG contract is allocation-free",
            p.name,
            i + 1
        );
    }
}

#[test]
fn oil_steady_state_is_allocation_free() {
    assert_zero_alloc_iterations(ProblemKind::Oil);
}

#[test]
fn rhd_steady_state_is_allocation_free() {
    assert_zero_alloc_iterations(ProblemKind::Rhd);
}

#[test]
fn weather_steady_state_is_allocation_free() {
    assert_zero_alloc_iterations(ProblemKind::Weather);
}

/// The bare V-cycle (one preconditioner application, outside any Krylov
/// loop) is also allocation-free after the first application.
#[test]
fn bare_vcycle_is_allocation_free() {
    let p = ProblemKind::Laplace27.build(10);
    let mut mg = Mg::<f32>::setup(&p.matrix, &MgConfig::d16()).expect(p.name);
    let b = p.rhs();
    let mut z = vec![0.0f64; p.matrix.rows()];
    mg.apply(&b, &mut z); // warmup application
    let before = alloc_count();
    for _ in 0..5 {
        mg.apply(&b, &mut z);
    }
    let delta = alloc_count() - before;
    assert_eq!(delta, 0, "5 warm V-cycles performed {delta} heap allocation(s)");
}
