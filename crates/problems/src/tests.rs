//! Tests that the generators reproduce the Table 3 numerical signatures
//! and that every problem is solvable by the preconditioned solvers.

use fp16mg_core::{MatOp, Mg, MgConfig};
use fp16mg_krylov::{cg, gmres, SolveOptions};
use fp16mg_sgdia::kernels::Par;
use fp16mg_sgdia::Csr;

use crate::metrics::{self, Fp16Distance};
use crate::{ProblemKind, SolverKind};

#[test]
fn table3_signature_patterns_and_components() {
    for kind in ProblemKind::all() {
        let p = kind.build(8);
        assert_eq!(p.matrix.pattern().name(), kind.pattern_name(), "{}", p.name);
        assert_eq!(p.matrix.grid().components, kind.components(), "{}", p.name);
        assert_eq!(p.solver, kind.solver(), "{}", p.name);
    }
}

#[test]
fn table3_fp16_range_classification() {
    use Fp16Distance::*;
    let expected = [
        (ProblemKind::Laplace27, false, InRange),
        (ProblemKind::Laplace27E8, true, Far),
        (ProblemKind::Rhd, true, Far),
        (ProblemKind::Oil, false, InRange),
        (ProblemKind::Weather, true, Near),
        (ProblemKind::Rhd3T, true, Far),
        (ProblemKind::Oil4C, true, Near),
        (ProblemKind::Solid3D, true, Far),
    ];
    for (kind, out, dist) in expected {
        let p = kind.build(12);
        let (o, d) = metrics::fp16_distance(&p.matrix);
        assert_eq!((o, d), (out, dist), "{}: got ({o}, {d:?})", p.name);
    }
}

#[test]
fn anisotropy_ordering_matches_table3() {
    // laplace27 has no anisotropy; rhd/solid-3D low; oil/weather/rhd-3T
    // high (Table 3 "Aniso.").
    let lap = metrics::anisotropy(&ProblemKind::Laplace27.build(10).matrix);
    assert_eq!(lap.label(), "None", "laplace27: {lap:?}");
    let oil = metrics::anisotropy(&ProblemKind::Oil.build(12).matrix);
    assert_eq!(oil.label(), "High", "oil: {oil:?}");
    let weather = metrics::anisotropy(&ProblemKind::Weather.build(12).matrix);
    assert_eq!(weather.label(), "High", "weather: {weather:?}");
    let rhd3t = metrics::anisotropy(&ProblemKind::Rhd3T.build(10).matrix);
    assert_eq!(rhd3t.label(), "High", "rhd-3T: {rhd3t:?}");
    let rhd = metrics::anisotropy(&ProblemKind::Rhd.build(12).matrix);
    assert_eq!(rhd.label(), "Low", "rhd: {rhd:?}");
    assert!(rhd.median < oil.median, "rhd should be less anisotropic than oil");
    assert!(rhd.median < rhd3t.median, "rhd should be less anisotropic than rhd-3T");
    let solid = metrics::anisotropy(&ProblemKind::Solid3D.build(8).matrix);
    assert_eq!(solid.label(), "Low", "solid-3D: {solid:?}");
}

#[test]
fn fig1_histograms_span_expected_decades() {
    // rhd spans many decades, reaching past both FP16 bounds.
    let h = metrics::range_histogram(&ProblemKind::Rhd.build(12).matrix);
    let lo = h.first().unwrap().0;
    let hi = h.last().unwrap().0;
    assert!(lo <= -5, "rhd should reach below FP16_MIN decade, got {lo}");
    assert!(hi >= 7, "rhd should reach far above FP16_MAX decade, got {hi}");
    assert!((h.iter().map(|&(_, p)| p).sum::<f64>() - 100.0).abs() < 1e-9);
    // laplace27 is confined to two decades (1 and 26).
    let h = metrics::range_histogram(&ProblemKind::Laplace27.build(8).matrix);
    assert!(h.len() <= 2, "{h:?}");
}

#[test]
fn spd_problems_are_symmetric() {
    for kind in [ProblemKind::Laplace27, ProblemKind::Rhd, ProblemKind::Rhd3T, ProblemKind::Solid3D]
    {
        let p = kind.build(6);
        let csr = Csr::<f64>::from_sgdia(&p.matrix);
        let n = csr.rows();
        let mut ri = vec![0.0f64; n];
        let mut rj = vec![0.0f64; n];
        let mut checked = 0usize;
        for i in (0..n).step_by(7) {
            csr.dense_row(i, &mut ri);
            for (j, &v) in ri.iter().enumerate().skip(i + 1) {
                if v != 0.0 {
                    csr.dense_row(j, &mut rj);
                    let rel = (v - rj[i]).abs() / v.abs().max(rj[i].abs());
                    assert!(rel < 1e-12, "{}: asymmetric at ({i},{j})", p.name);
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }
}

#[test]
fn gmres_problems_are_nonsymmetric() {
    for kind in [ProblemKind::Oil, ProblemKind::Weather, ProblemKind::Oil4C] {
        let p = kind.build(6);
        let csr = Csr::<f64>::from_sgdia(&p.matrix);
        let n = csr.rows();
        let mut ri = vec![0.0f64; n];
        let mut rj = vec![0.0f64; n];
        let mut asym = false;
        'outer: for i in 0..n {
            csr.dense_row(i, &mut ri);
            for (j, &v) in ri.iter().enumerate().skip(i + 1) {
                if v != 0.0 {
                    csr.dense_row(j, &mut rj);
                    if (v - rj[i]).abs() > 1e-9 * v.abs() {
                        asym = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(asym, "{} should be nonsymmetric", p.name);
    }
}

#[test]
fn generators_are_deterministic() {
    let a = ProblemKind::Oil.build(8);
    let b = ProblemKind::Oil.build(8);
    assert_eq!(a.matrix.data(), b.matrix.data());
}

#[test]
fn diagonals_positive_everywhere() {
    // Theorem 4.1's prerequisite must hold on every generated problem.
    for kind in ProblemKind::all() {
        let p = kind.build(8);
        for d in p.matrix.extract_diagonal() {
            assert!(d > 0.0, "{}: non-positive diagonal {d}", p.name);
        }
    }
}

#[test]
fn condition_estimate_sane_on_laplacian() {
    let p = ProblemKind::Laplace27.build(12);
    let cond = metrics::condition_estimate(&p.matrix, 60);
    // 27-point Laplacian at n=12: moderate conditioning, far from 1.
    assert!(cond > 10.0 && cond < 1e5, "cond = {cond}");
}

#[test]
fn condition_orders_match_table3() {
    // rhd (1e8-ish) must dwarf laplace27 (1e3-ish at paper sizes).
    let lap = metrics::condition_estimate(&ProblemKind::Laplace27.build(10).matrix, 50);
    let rhd = metrics::condition_estimate(&ProblemKind::Rhd.build(10).matrix, 80);
    assert!(rhd > 50.0 * lap, "rhd {rhd:.3e} vs laplace27 {lap:.3e}");
}

/// Every problem must be solvable by its designated solver with the
/// paper's Full64 configuration.
#[test]
fn all_problems_solve_full64() {
    for kind in ProblemKind::all() {
        let p = kind.build(12);
        let mut mg = Mg::<f64>::setup(&p.matrix, &MgConfig::d64()).expect(p.name);
        let op = MatOp::new(&p.matrix, Par::Seq);
        let b = p.rhs();
        let mut x = vec![0.0f64; p.matrix.rows()];
        let opts = SolveOptions { tol: 1e-9, max_iters: 300, restart: 30, ..Default::default() };
        let res = match p.solver {
            SolverKind::Cg => cg(&op, &mut mg, &b, &mut x, &opts),
            SolverKind::Gmres => gmres(&op, &mut mg, &b, &mut x, &opts),
        };
        assert!(
            res.converged(),
            "{}: {:?} after {} iters (rel {:.3e})",
            p.name,
            res.reason,
            res.iters,
            res.final_rel_residual
        );
    }
}

/// The headline configuration (K64 P32 D16 setup-then-scale) must also
/// solve every problem, with an iteration count close to Full64 — the
/// paper's central claim.
#[test]
fn all_problems_solve_d16_setup_then_scale() {
    for kind in ProblemKind::all() {
        let p = kind.build(12);
        let mut mg64 = Mg::<f64>::setup(&p.matrix, &MgConfig::d64()).expect(p.name);
        let mut mg16 = Mg::<f32>::setup(&p.matrix, &MgConfig::d16()).expect(p.name);
        let op = MatOp::new(&p.matrix, Par::Seq);
        let b = p.rhs();
        let opts = SolveOptions { tol: 1e-9, max_iters: 400, restart: 30, ..Default::default() };
        let mut x64 = vec![0.0f64; p.matrix.rows()];
        let mut x16 = vec![0.0f64; p.matrix.rows()];
        let (r64, r16) = match p.solver {
            SolverKind::Cg => {
                (cg(&op, &mut mg64, &b, &mut x64, &opts), cg(&op, &mut mg16, &b, &mut x16, &opts))
            }
            SolverKind::Gmres => (
                gmres(&op, &mut mg64, &b, &mut x64, &opts),
                gmres(&op, &mut mg16, &b, &mut x16, &opts),
            ),
        };
        assert!(r64.converged(), "{} Full64 failed", p.name);
        assert!(r16.converged(), "{} D16 failed: {:?}", p.name, r16.reason);
        // Paper Fig. 8 sees at most ~+40% (rhd-3T). Our synthetic rhd is
        // more sensitive to the FP32 *computation* precision (the storage
        // effect alone is ~+18%, matching the paper — see the
        // storage_effect_is_small_with_p64 integration test), so allow 2x.
        assert!(
            r16.iters <= r64.iters * 2 + 4,
            "{}: D16 {} iters vs Full64 {}",
            p.name,
            r16.iters,
            r64.iters
        );
    }
}

// ------------------------------------------------------------- evolve --

mod evolve {
    use fp16mg_fp::Precision;
    use fp16mg_sgdia::audit::{audit, drift};

    use crate::evolve::{DriftPreset, Evolution};
    use crate::ProblemKind;

    /// The cache's decision bounds (CacheConfig defaults), replicated so
    /// the schedule calibration below proves the presets actually walk
    /// the keep / rescale / rebuild ladder against them.
    const KEEP_MAX: f64 = 0.25;
    const RESCALE_MAX: f64 = 3.0;

    #[test]
    fn step_zero_is_the_base_operator_bit_for_bit() {
        for kind in [ProblemKind::Oil, ProblemKind::Rhd, ProblemKind::Weather] {
            let evo = Evolution::new(kind, 6);
            let a0 = evo.matrix_at(0);
            for (x, y) in a0.data().iter().zip(evo.base().data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{}", kind.name());
            }
        }
    }

    #[test]
    fn matrix_at_is_pure_in_the_step_index() {
        let evo = Evolution::new(ProblemKind::Oil, 6);
        for step in [1u64, 5, 11] {
            let a = evo.matrix_at(step);
            let b = evo.matrix_at(step);
            for (x, y) in a.data().iter().zip(b.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "step {step}");
            }
        }
        // And independent of call order / history.
        let fresh = Evolution::new(ProblemKind::Oil, 6).matrix_at(11);
        for (x, y) in fresh.data().iter().zip(evo.matrix_at(11).data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn drift_is_never_structural() {
        // Congruence scaling must not create/destroy couplings or make
        // a previously overflow-free *f64 source* non-finite.
        for kind in [ProblemKind::Oil, ProblemKind::Rhd, ProblemKind::Weather] {
            let evo = Evolution::new(kind, 6);
            let base = audit(evo.base(), Precision::F16);
            for step in 1..16u64 {
                let cur = audit(&evo.matrix_at(step), Precision::F16);
                let d = drift(&base, &cur);
                assert!(!d.structure_changed, "{} step {step}: {d}", kind.name());
                assert_eq!(cur.source_non_finite, 0, "{} step {step}", kind.name());
            }
        }
    }

    #[test]
    fn default_schedules_walk_keep_rescale_rebuild() {
        // Replay the cache's reuse predicate over each trajectory: the
        // presets must produce all three decisions within a short run,
        // otherwise the simulation engine cannot demonstrate the ladder.
        for kind in [ProblemKind::Oil, ProblemKind::Rhd, ProblemKind::Weather] {
            let evo = Evolution::new(kind, 6);
            let mut baseline = audit(evo.base(), Precision::F16);
            let (mut keeps, mut rescales, mut rebuilds) = (0u32, 0u32, 0u32);
            for step in 1..16u64 {
                let cur = audit(&evo.matrix_at(step), Precision::F16);
                let d = drift(&baseline, &cur);
                if !d.structural() && d.magnitude() <= KEEP_MAX {
                    keeps += 1;
                } else if !d.structural() && d.magnitude() <= RESCALE_MAX {
                    rescales += 1;
                    baseline = cur;
                } else {
                    rebuilds += 1;
                    baseline = cur;
                }
            }
            assert!(
                keeps > 0 && rescales > 0 && rebuilds > 0,
                "{}: keep={keeps} rescale={rescales} rebuild={rebuilds}",
                kind.name()
            );
        }
    }

    #[test]
    fn multiplier_is_identity_at_step_zero_and_bounded() {
        for kind in [ProblemKind::Oil, ProblemKind::Rhd, ProblemKind::Weather] {
            let p = DriftPreset::for_kind(kind);
            for i in 0..8 {
                assert_eq!(p.multiplier(i, 8, 0), 1.0, "{}", kind.name());
            }
            let bound = p.smooth_amp.exp2()
                * p.front_contrast.max(1.0)
                * p.jump_factor.max(1.0)
                * (1.0 + 1e-12);
            for step in 0..64u64 {
                for i in 0..8 {
                    let m = p.multiplier(i, 8, step);
                    assert!(m.is_finite() && m > 0.0 && m <= bound, "{m} at step {step}");
                }
            }
        }
    }
}
