//! Operator drift models for time-stepping simulation.
//!
//! The paper's real-world sources are implicit time-stepping codes: the
//! operator at step `t+1` is the operator at step `t` with coefficients
//! that moved — permeability around an advancing waterflood front,
//! opacity behind a radiation front, stability profiles across a weather
//! system. This module turns each one-shot [`Problem`] generator into a
//! *trajectory* of operators, so the reuse machinery (range audits,
//! hierarchy cache, rescale-in-place) can be exercised under sustained
//! drift instead of synthetic one-off rescales.
//!
//! Every drift is a **congruence scaling**: a per-cell positive
//! multiplier field `m(cell, t)` applied as `A_t = D_t^{1/2} A_0
//! D_t^{1/2}` (entry `(cell, nb)` scaled by `sqrt(m_cell · m_nb)`).
//! That preserves symmetry and positive definiteness exactly, never
//! creates or destroys a coupling (no structural drift), and moves the
//! value range the way real coefficient evolution does. Three model
//! components compose multiplicatively, each a pure function of the
//! step index — essential for crash-safe resume, where a restarted run
//! must reconstruct the step-`t` operator bit-identically:
//!
//! * **smooth drift** — a global `2^(amp · sin(freq · t))` factor, the
//!   slow background evolution that a cached hierarchy should survive
//!   (and that periodically accumulates past the keep bound, forcing a
//!   rescale-in-place);
//! * **front propagation** — cells behind a front sweeping the `i` axis
//!   carry an extra contrast factor (waterflood / ionization front);
//! * **sudden contrast jumps** — alternating windows multiply the whole
//!   field by a large factor (injection-phase switch, storm onset),
//!   the drift that must invalidate and rebuild.

use fp16mg_sgdia::SgDia;
use fp16mg_stencil::Tap;

use crate::{Problem, ProblemKind};

/// The drift-model constants of one simulated scenario. All three
/// components are optional: a zero `front_period` or `jump_every`
/// disables that component, `smooth_amp = 0` freezes the background.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftPreset {
    /// Amplitude of the global smooth drift, in log2 units (the whole
    /// field breathes by up to `±smooth_amp` doublings).
    pub smooth_amp: f64,
    /// Angular frequency of the smooth drift, radians per step.
    pub smooth_freq: f64,
    /// Extra multiplier carried by cells behind the front (1.0 = off).
    pub front_contrast: f64,
    /// Steps for the front to sweep the `i` axis once (0 = no front).
    /// The front resets at each period boundary — a new injection cycle.
    pub front_period: u64,
    /// Field multiplier inside a jump window.
    pub jump_factor: f64,
    /// Jump window length in steps (0 = no jumps): windows alternate
    /// off/on, so both edges of every window are large sudden drifts.
    pub jump_every: u64,
}

impl DriftPreset {
    /// The scenario preset for a problem kind: the reservoir problems
    /// are front-dominated (waterflood), the radiation problems combine
    /// a strong front with smooth opacity evolution, the weather
    /// problem is smooth background drift punctuated by storm-onset
    /// jumps. Kinds without a physical scenario get the oil preset.
    pub fn for_kind(kind: ProblemKind) -> Self {
        match kind {
            ProblemKind::Oil | ProblemKind::Oil4C => DriftPreset {
                smooth_amp: 0.9,
                smooth_freq: 0.5,
                front_contrast: 2.5,
                front_period: 10,
                jump_factor: 24.0,
                jump_every: 6,
            },
            ProblemKind::Rhd | ProblemKind::Rhd3T => DriftPreset {
                smooth_amp: 0.8,
                smooth_freq: 0.45,
                front_contrast: 6.0,
                front_period: 9,
                jump_factor: 20.0,
                jump_every: 7,
            },
            ProblemKind::Weather => DriftPreset {
                smooth_amp: 1.0,
                smooth_freq: 0.4,
                front_contrast: 1.0,
                front_period: 0,
                jump_factor: 24.0,
                jump_every: 5,
            },
            _ => DriftPreset {
                smooth_amp: 0.9,
                smooth_freq: 0.5,
                front_contrast: 2.5,
                front_period: 10,
                jump_factor: 24.0,
                jump_every: 6,
            },
        }
    }

    /// The per-cell multiplier at step `step` for a cell at `i` on a
    /// grid with `nx` cells along the front axis. Pure in its inputs;
    /// `multiplier(_, _, 0) == 1` exactly, so step 0 is the base
    /// operator bit-for-bit.
    pub fn multiplier(&self, i: usize, nx: usize, step: u64) -> f64 {
        let t = step as f64;
        let mut m = (self.smooth_amp * (self.smooth_freq * t).sin()).exp2();
        if self.front_period > 0 && self.front_contrast != 1.0 {
            let phase = (step % self.front_period) as f64 / self.front_period as f64;
            if (i as f64) < phase * nx as f64 {
                m *= self.front_contrast;
            }
        }
        if self.jump_every > 0 && (step / self.jump_every) % 2 == 1 {
            m *= self.jump_factor;
        }
        m
    }
}

/// A problem kind turned into an operator trajectory: `matrix_at(t)` is
/// a pure, deterministic function of `(kind, n, preset, t)`, so any two
/// calls — in the same process or after a crash-resume — produce
/// bit-identical matrices.
pub struct Evolution {
    kind: ProblemKind,
    n: usize,
    preset: DriftPreset,
    base: SgDia<f64>,
}

impl Evolution {
    /// An evolution over `kind.build(n)` with the kind's scenario
    /// preset.
    ///
    /// # Panics
    /// Panics for `n < 4` (the generator's own bound).
    pub fn new(kind: ProblemKind, n: usize) -> Self {
        Self::with_preset(kind, n, DriftPreset::for_kind(kind))
    }

    /// An evolution with an explicit drift preset.
    ///
    /// # Panics
    /// Panics for `n < 4`.
    pub fn with_preset(kind: ProblemKind, n: usize, preset: DriftPreset) -> Self {
        Evolution { kind, n, preset, base: kind.build(n).matrix }
    }

    /// The evolved problem kind.
    pub fn kind(&self) -> ProblemKind {
        self.kind
    }

    /// The base extent the trajectory was built at.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The active drift preset.
    pub fn preset(&self) -> &DriftPreset {
        &self.preset
    }

    /// The step-0 operator (the unmodified generator output).
    pub fn base(&self) -> &SgDia<f64> {
        &self.base
    }

    /// The operator at step `step`: the base matrix under the preset's
    /// congruence scaling. Structure (pattern, geometry, zero/nonzero
    /// placement) never changes; only magnitudes drift.
    pub fn matrix_at(&self, step: u64) -> SgDia<f64> {
        let mut m = self.base.clone();
        if step == 0 {
            return m;
        }
        let grid = *m.grid();
        let taps: Vec<Tap> = m.pattern().taps().to_vec();
        let mut mult = vec![1.0f64; grid.cells()];
        for (cell, i, _, _) in grid.iter_cells() {
            mult[cell] = self.preset.multiplier(i, grid.nx, step);
        }
        for (cell, i, j, k) in grid.iter_cells() {
            for (t, tap) in taps.iter().enumerate() {
                let factor = if tap.dx == 0 && tap.dy == 0 && tap.dz == 0 {
                    mult[cell]
                } else if grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                    let nb = (cell as i64 + grid.stride(tap.dx, tap.dy, tap.dz)) as usize;
                    (mult[cell] * mult[nb]).sqrt()
                } else {
                    continue; // structural zero stays zero
                };
                let v = m.get(cell, t);
                m.set(cell, t, v * factor);
            }
        }
        m
    }

    /// The full [`Problem`] at step `step` (same name/solver as the base
    /// kind, drifted matrix).
    pub fn problem_at(&self, step: u64) -> Problem {
        Problem {
            name: self.kind.name(),
            kind: self.kind,
            matrix: self.matrix_at(step),
            solver: self.kind.solver(),
        }
    }
}

/// The implicit-step right-hand side: the problem's stationary source
/// plus a mass-like coupling to the previous step's solution
/// (`b_t = r0 + α·x_{t-1}` with `α` tied to the operator's magnitude,
/// the shape of a backward-Euler step). Deterministic and
/// bit-reproducible, so a resumed trajectory recomputes the same
/// right-hand sides from the checkpointed solution.
pub fn step_rhs(problem: &Problem, prev: Option<&[f64]>) -> Vec<f64> {
    let mut b = problem.rhs();
    if let Some(x) = prev {
        let (mx, _) = problem.matrix.abs_max();
        let alpha = 0.5 * mx.max(1.0);
        for (bi, xi) in b.iter_mut().zip(x) {
            *bi += alpha * xi;
        }
    }
    b
}
