//! Numerical-feature metrics of a problem matrix.
//!
//! These reproduce the characterizations the paper reports:
//! * [`range_histogram`] — the decade histogram of nonzero magnitudes vs
//!   the FP16 range (Fig. 1);
//! * [`fp16_distance`] — the Table 3 "Out-of-FP16?" / "Dist." fields;
//! * [`anisotropy`] — the per-row multi-scale measure of Fig. 5 (ratio of
//!   the strongest to the weakest off-diagonal coupling of each row);
//! * [`condition_estimate`] — a Lanczos (CG-coefficient) estimate of the
//!   extreme eigenvalues and their ratio (Table 3 "Cond.").

use fp16mg_fp::{Storage, F16};
use fp16mg_sgdia::kernels::{self, Par};
use fp16mg_sgdia::SgDia;

/// Decade histogram of nonzero magnitudes: bucket `d` covers
/// `[10^d, 10^(d+1))`. Returns `(decade, percent-of-nonzeros)` sorted by
/// decade; exact zeros are skipped (they are structural padding).
pub fn range_histogram<S: Storage>(a: &SgDia<S>) -> Vec<(i32, f64)> {
    let mut counts: std::collections::BTreeMap<i32, usize> = std::collections::BTreeMap::new();
    let mut total = 0usize;
    for &v in a.data() {
        let x = v.load_f64().abs();
        if x == 0.0 || !x.is_finite() {
            continue;
        }
        *counts.entry(x.log10().floor() as i32).or_default() += 1;
        total += 1;
    }
    counts.into_iter().map(|(d, c)| (d, 100.0 * c as f64 / total.max(1) as f64)).collect()
}

/// Distance of a matrix's magnitude range from FP16 (Table 3 "Dist.").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fp16Distance {
    /// All magnitudes representable: no scaling needed.
    InRange,
    /// Maximum exceeds `FP16_MAX` by less than 100×.
    Near,
    /// Maximum exceeds `FP16_MAX` by 100× or more.
    Far,
}

impl core::fmt::Display for Fp16Distance {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Fp16Distance::InRange => "-",
            Fp16Distance::Near => "Near",
            Fp16Distance::Far => "Far",
        })
    }
}

/// Classifies the matrix against the FP16 range: `(out_of_range, dist)`.
pub fn fp16_distance<S: Storage>(a: &SgDia<S>) -> (bool, Fp16Distance) {
    let (max, nonfinite) = a.abs_max();
    let ratio = max / F16::MAX_F64;
    if nonfinite || ratio >= 100.0 {
        (true, Fp16Distance::Far)
    } else if ratio > 1.0 {
        (true, Fp16Distance::Near)
    } else {
        (false, Fp16Distance::InRange)
    }
}

/// Summary of the per-row multi-scale (anisotropy) measure: for each row,
/// `log10(max |off-diag| / min nonzero |off-diag|)`; strong directional
/// imbalance in the couplings is exactly what makes a system hard for
/// point smoothers (Fig. 5's metric, after Xu et al.).
#[derive(Clone, Copy, Debug)]
pub struct Anisotropy {
    /// Median of the per-row log-ratios.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Anisotropy {
    /// Qualitative label matching Table 3's "Aniso." field.
    pub fn label(&self) -> &'static str {
        if self.median < 0.3 {
            "None"
        } else if self.median < 1.3 {
            "Low"
        } else {
            "High"
        }
    }
}

/// Computes the anisotropy summary.
pub fn anisotropy<S: Storage>(a: &SgDia<S>) -> Anisotropy {
    let grid = a.grid();
    let r = grid.components;
    let taps: Vec<_> = a.pattern().taps().to_vec();
    let mut ratios: Vec<f64> = Vec::with_capacity(a.rows());
    for (cell, i, j, k) in grid.iter_cells() {
        let mut max = vec![0.0f64; r];
        let mut min = vec![f64::INFINITY; r];
        for (t, tap) in taps.iter().enumerate() {
            if tap.is_center() || tap.cin != tap.cout {
                continue; // directional couplings of one field
            }
            if !grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                continue;
            }
            let v = a.get(cell, t).load_f64().abs();
            if v == 0.0 {
                continue;
            }
            let c = tap.cout as usize;
            max[c] = max[c].max(v);
            min[c] = min[c].min(v);
        }
        for c in 0..r {
            if max[c] > 0.0 && min[c].is_finite() {
                ratios.push((max[c] / min[c]).log10());
            }
        }
    }
    if ratios.is_empty() {
        return Anisotropy { median: 0.0, p90: 0.0, max: 0.0 };
    }
    // total_cmp: the ratios are finite by construction, but a NaN slipping
    // in must not panic a metrics pass over an arbitrary matrix.
    ratios.sort_by(f64::total_cmp);
    let pick = |q: f64| ratios[((ratios.len() - 1) as f64 * q) as usize];
    Anisotropy { median: pick(0.5), p90: pick(0.9), max: ratios.last().copied().unwrap_or(0.0) }
}

/// Estimates the spectral condition number of a (near-)SPD matrix from
/// `iters` steps of unpreconditioned CG: the CG coefficients define the
/// Lanczos tridiagonal whose extreme eigenvalues converge to the
/// operator's extremes from inside.
pub fn condition_estimate(a: &SgDia<f64>, iters: usize) -> f64 {
    let n = a.rows();
    let mut x = vec![0.0f64; n];
    let b: Vec<f64> = (0..n).map(|i| ((i as f64 * 0.37).sin() + 1.2) / 2.0).collect();
    // CG recording alpha/beta.
    let mut rvec = b.clone();
    let mut p = rvec.clone();
    let mut ap = vec![0.0f64; n];
    let mut rr: f64 = rvec.iter().map(|&v| v * v).sum();
    let mut alphas = Vec::new();
    let mut betas = Vec::new();
    for _ in 0..iters {
        kernels::spmv(a, &p, &mut ap, Par::Seq);
        let pap: f64 = p.iter().zip(&ap).map(|(&u, &v)| u * v).sum();
        if pap <= 0.0 || !pap.is_finite() {
            break;
        }
        let alpha = rr / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            rvec[i] -= alpha * ap[i];
        }
        let rr_new: f64 = rvec.iter().map(|&v| v * v).sum();
        let beta = rr_new / rr;
        rr = rr_new;
        alphas.push(alpha);
        betas.push(beta);
        for i in 0..n {
            p[i] = rvec[i] + beta * p[i];
        }
        if rr.sqrt() < 1e-28 {
            break;
        }
    }
    let m = alphas.len();
    if m == 0 {
        return f64::NAN;
    }
    // Lanczos tridiagonal from CG coefficients:
    // T[0,0] = 1/α₀; T[k,k] = 1/αₖ + βₖ₋₁/αₖ₋₁;
    // T[k,k+1] = T[k+1,k] = √βₖ / αₖ.
    let mut diag = vec![0.0f64; m];
    let mut off = vec![0.0f64; m.saturating_sub(1)];
    diag[0] = 1.0 / alphas[0];
    for k in 1..m {
        diag[k] = 1.0 / alphas[k] + betas[k - 1] / alphas[k - 1];
    }
    for k in 0..m - 1 {
        off[k] = betas[k].sqrt() / alphas[k];
    }
    let (lmin, lmax) = tridiag_extreme_eigs(&diag, &off);
    lmax / lmin.max(f64::MIN_POSITIVE)
}

/// Extreme eigenvalues of a symmetric tridiagonal matrix by bisection on
/// the Sturm sequence.
fn tridiag_extreme_eigs(diag: &[f64], off: &[f64]) -> (f64, f64) {
    let m = diag.len();
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..m {
        let r = (if i > 0 { off[i - 1].abs() } else { 0.0 })
            + (if i < m - 1 { off[i].abs() } else { 0.0 });
        lo = lo.min(diag[i] - r);
        hi = hi.max(diag[i] + r);
    }
    // Count of eigenvalues < x via the Sturm sequence.
    let count_below = |x: f64| -> usize {
        let mut cnt = 0usize;
        let mut d = diag[0] - x;
        if d < 0.0 {
            cnt += 1;
        }
        for i in 1..m {
            let o2 = off[i - 1] * off[i - 1];
            d = diag[i] - x - o2 / if d != 0.0 { d } else { 1e-300 };
            if d < 0.0 {
                cnt += 1;
            }
        }
        cnt
    };
    let bisect = |target: usize| -> f64 {
        let (mut a, mut b) = (lo, hi);
        for _ in 0..120 {
            let mid = 0.5 * (a + b);
            if count_below(mid) > target {
                b = mid;
            } else {
                a = mid;
            }
        }
        0.5 * (a + b)
    };
    (bisect(0), bisect(m - 1))
}
