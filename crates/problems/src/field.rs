//! Deterministic random coefficient fields.
//!
//! Real-world coefficients (permeability, opacity, stiffness) are
//! spatially correlated, not white noise — the correlation is what makes
//! their magnitude histograms span many decades per Fig. 1 while staying
//! locally smooth enough for multigrid. We synthesize such fields as
//! smoothed Gaussian noise, optionally layered (reservoir stratigraphy)
//! or vertically stretched (atmospheric grids).

use fp16mg_grid::Grid3;
use fp16mg_testkit::Rng;

/// A per-cell scalar field.
#[derive(Clone, Debug)]
pub struct Field {
    grid: Grid3,
    data: Vec<f64>,
}

impl Field {
    /// Smoothed standard-normal field: white noise followed by `passes`
    /// sweeps of 7-point neighbor averaging, re-standardized to zero mean
    /// and unit variance.
    pub fn smooth_gaussian(grid: Grid3, seed: u64, passes: usize) -> Self {
        let mut rng = Rng::new(seed);
        let n = grid.cells();
        // Box–Muller pairs from the deterministic in-repo generator.
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let (a, b) = rng.normal_pair();
            data.push(a);
            if data.len() < n {
                data.push(b);
            }
        }
        let mut f = Field { grid, data };
        for _ in 0..passes {
            f.smooth_once();
        }
        f.standardize();
        f
    }

    /// Layered field: a 1-D smoothed profile along `z`, constant within
    /// each horizontal layer (SPE10-style stratigraphy), plus a small
    /// horizontal perturbation field.
    pub fn layered(grid: Grid3, seed: u64, horizontal_jitter: f64) -> Self {
        let mut rng = Rng::new(seed);
        let mut profile: Vec<f64> = (0..grid.nz).map(|_| rng.f64_range(-1.0, 1.0)).collect();
        // Smooth the profile lightly so adjacent layers correlate.
        for _ in 0..2 {
            let prev = profile.clone();
            for k in 0..grid.nz {
                let lo = prev[k.saturating_sub(1)];
                let hi = prev[(k + 1).min(grid.nz - 1)];
                profile[k] = 0.5 * prev[k] + 0.25 * (lo + hi);
            }
        }
        let jitter = Field::smooth_gaussian(grid, seed ^ 0x5eed, 2);
        let mut data = vec![0.0f64; grid.cells()];
        for (cell, _, _, k) in grid.iter_cells() {
            data[cell] = profile[k] * 2.0 + horizontal_jitter * jitter.data[cell];
        }
        let mut f = Field { grid, data };
        f.standardize();
        f
    }

    fn smooth_once(&mut self) {
        let g = self.grid;
        let prev = self.data.clone();
        for (cell, i, j, k) in g.iter_cells() {
            let mut acc = prev[cell];
            let mut cnt = 1.0;
            for (dx, dy, dz) in
                [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)]
            {
                if g.contains_offset(i, j, k, dx, dy, dz) {
                    acc += prev[(cell as i64 + g.stride(dx, dy, dz)) as usize];
                    cnt += 1.0;
                }
            }
            self.data[cell] = acc / cnt;
        }
    }

    fn standardize(&mut self) {
        let n = self.data.len() as f64;
        let mean = self.data.iter().sum::<f64>() / n;
        let var = self.data.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let sd = var.sqrt().max(1e-300);
        for v in &mut self.data {
            *v = (*v - mean) / sd;
        }
    }

    /// Value at a cell.
    #[inline]
    pub fn at(&self, cell: usize) -> f64 {
        self.data[cell]
    }

    /// Maps the (standardized) field to a log-uniform coefficient in
    /// `[lo, hi]`: `exp` of an affine map of the clamped field, so the
    /// output magnitudes span the decades between `lo` and `hi`.
    pub fn log_coefficient(&self, cell: usize, lo: f64, hi: f64) -> f64 {
        let t = (self.at(cell).clamp(-2.5, 2.5) + 2.5) / 5.0; // [0, 1]
        (lo.ln() + t * (hi.ln() - lo.ln())).exp()
    }
}

impl Field {
    /// Coarse-lattice field: standard-normal values on a `(res+1)³`
    /// lattice, trilinearly interpolated to the grid and standardized.
    ///
    /// The roughness is controlled by `res` *independently of the grid
    /// size*: the real matrices resolve their coefficient contrast over a
    /// fixed number of physical features, so a laptop-scale instance must
    /// not become rougher per cell just because it has fewer cells.
    pub fn interpolated(grid: Grid3, seed: u64, res: usize) -> Self {
        let res = res.max(1);
        let mut rng = Rng::new(seed);
        let m = res + 1;
        let lattice: Vec<f64> = {
            let mut v = Vec::with_capacity(m * m * m);
            while v.len() < m * m * m {
                let (a, b) = rng.normal_pair();
                v.push(a);
                if v.len() < m * m * m {
                    v.push(b);
                }
            }
            v
        };
        let at = |i: usize, j: usize, k: usize| lattice[(k * m + j) * m + i];
        let mut data = vec![0.0f64; grid.cells()];
        for (cell, i, j, k) in grid.iter_cells() {
            let fx = i as f64 / (grid.nx.max(2) - 1) as f64 * res as f64;
            let fy = j as f64 / (grid.ny.max(2) - 1) as f64 * res as f64;
            let fz = k as f64 / (grid.nz.max(2) - 1) as f64 * res as f64;
            let (x0, y0, z0) = (
                (fx as usize).min(res - 1),
                (fy as usize).min(res - 1),
                (fz as usize).min(res - 1),
            );
            let (tx, ty, tz) = (fx - x0 as f64, fy - y0 as f64, fz - z0 as f64);
            let mut v = 0.0;
            for (dz, wz) in [(0, 1.0 - tz), (1, tz)] {
                for (dy, wy) in [(0, 1.0 - ty), (1, ty)] {
                    for (dx, wx) in [(0, 1.0 - tx), (1, tx)] {
                        v += wx * wy * wz * at(x0 + dx, y0 + dy, z0 + dz);
                    }
                }
            }
            data[cell] = v;
        }
        let mut f = Field { grid, data };
        f.standardize();
        f
    }
}
