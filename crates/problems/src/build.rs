//! The eight problem generators.

use fp16mg_grid::Grid3;
use fp16mg_sgdia::{Layout, SgDia};
use fp16mg_stencil::{Pattern, Tap};

use crate::field::Field;

/// Which Krylov method the problem is solved with (Table 3 "Solver").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// Conjugate gradients (SPD problems).
    Cg,
    /// Restarted GMRES (nonsymmetric problems).
    Gmres,
}

/// The paper's test problems.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProblemKind {
    /// Idealized 27-point Laplacian, constant coefficients.
    Laplace27,
    /// laplace27 with all coefficients multiplied by 1e8 (out-of-range
    /// probe).
    Laplace27E8,
    /// Radiation-hydrodynamics single-temperature diffusion: smooth but
    /// enormous opacity range.
    Rhd,
    /// Petroleum reservoir pressure system: layered log-normal
    /// permeability, strong vertical anisotropy, mildly nonsymmetric.
    Oil,
    /// Atmospheric dynamic-core Helmholtz problem: 3d19, vertically
    /// stretched grid, values near the FP16 boundary, nonsymmetric.
    Weather,
    /// Three-temperature radiation hydrodynamics: 3 coupled components
    /// with ~12 decades between the physics scales.
    Rhd3T,
    /// Four-component reservoir system near the FP16 boundary.
    Oil4C,
    /// Linear elasticity (3 displacements, 3d15), Lamé coefficients ~1e7.
    Solid3D,
}

/// A generated problem instance.
pub struct Problem {
    /// Paper name (e.g. `"rhd-3T"`).
    pub name: &'static str,
    /// Which generator produced it.
    pub kind: ProblemKind,
    /// The assembled matrix in `f64`.
    pub matrix: SgDia<f64>,
    /// Solver selection.
    pub solver: SolverKind,
}

impl ProblemKind {
    /// All eight problems in the paper's order.
    pub fn all() -> [ProblemKind; 8] {
        [
            ProblemKind::Laplace27,
            ProblemKind::Laplace27E8,
            ProblemKind::Rhd,
            ProblemKind::Oil,
            ProblemKind::Weather,
            ProblemKind::Rhd3T,
            ProblemKind::Oil4C,
            ProblemKind::Solid3D,
        ]
    }

    /// The six real-world-analog problems plotted in Fig. 1/Fig. 5.
    pub fn real_world() -> [ProblemKind; 6] {
        [
            ProblemKind::Rhd,
            ProblemKind::Oil,
            ProblemKind::Weather,
            ProblemKind::Rhd3T,
            ProblemKind::Oil4C,
            ProblemKind::Solid3D,
        ]
    }

    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            ProblemKind::Laplace27 => "laplace27",
            ProblemKind::Laplace27E8 => "laplace27*1e8",
            ProblemKind::Rhd => "rhd",
            ProblemKind::Oil => "oil",
            ProblemKind::Weather => "weather",
            ProblemKind::Rhd3T => "rhd-3T",
            ProblemKind::Oil4C => "oil-4C",
            ProblemKind::Solid3D => "solid-3D",
        }
    }

    /// Components per grid cell (Table 3 scalar vs vector PDE).
    pub fn components(self) -> usize {
        match self {
            ProblemKind::Rhd3T | ProblemKind::Solid3D => 3,
            ProblemKind::Oil4C => 4,
            _ => 1,
        }
    }

    /// Solver per Table 3.
    pub fn solver(self) -> SolverKind {
        match self {
            ProblemKind::Oil | ProblemKind::Weather | ProblemKind::Oil4C => SolverKind::Gmres,
            _ => SolverKind::Cg,
        }
    }

    /// Stencil name per Table 3.
    pub fn pattern_name(self) -> &'static str {
        match self {
            ProblemKind::Laplace27 | ProblemKind::Laplace27E8 => "3d27",
            ProblemKind::Weather => "3d19",
            ProblemKind::Solid3D => "3d15",
            _ => "3d7",
        }
    }

    /// Builds an instance with base extent `n` (each kind picks its own
    /// aspect ratio; total cells stay O(n³)).
    ///
    /// # Panics
    /// Panics for `n < 4`.
    pub fn build(self, n: usize) -> Problem {
        assert!(n >= 4, "problem size too small");
        let matrix = match self {
            ProblemKind::Laplace27 => laplace27(n, 1.0),
            ProblemKind::Laplace27E8 => laplace27(n, 1.0e8),
            ProblemKind::Rhd => rhd(n),
            ProblemKind::Oil => oil(n),
            ProblemKind::Weather => weather(n),
            ProblemKind::Rhd3T => rhd3t(n),
            ProblemKind::Oil4C => oil4c(n),
            ProblemKind::Solid3D => solid3d(n),
        };
        Problem { name: self.name(), kind: self, matrix, solver: self.solver() }
    }
}

impl Problem {
    /// Deterministic right-hand side (smooth plus positive bias, like the
    /// source terms of the originating applications; scaled to the
    /// matrix's magnitude so relative tolerances are meaningful).
    pub fn rhs(&self) -> Vec<f64> {
        let n = self.matrix.rows();
        let scale = {
            let (mx, _) = self.matrix.abs_max();
            mx.max(1.0)
        };
        (0..n).map(|i| scale * (((i as f64) * 0.61).sin() * 0.5 + 1.0)).collect()
    }
}

/// Transmissibility between two cells: harmonic mean of the cell
/// coefficients (the standard two-point flux approximation).
#[inline]
fn harmonic(a: f64, b: f64) -> f64 {
    2.0 * a * b / (a + b)
}

/// 27-point Laplacian: off-diagonals −scale, diagonal 26·scale (interior
/// value everywhere — eliminated Dirichlet boundary, strictly dominant at
/// faces).
fn laplace27(n: usize, scale: f64) -> SgDia<f64> {
    let grid = Grid3::cube(n);
    let pat = Pattern::p27();
    let taps: Vec<Tap> = pat.taps().to_vec();
    SgDia::from_fn(grid, pat, Layout::Soa, |_, _, _, _, t| {
        if taps[t].is_diagonal() {
            26.0 * scale
        } else {
            -scale
        }
    })
}

/// Scalar heterogeneous diffusion on 3d7 from a per-cell coefficient
/// field, with optional directional weights and skew (upwind) factor.
/// `sigma` adds a per-cell absorption to the diagonal.
fn diffusion7(
    grid: Grid3,
    kappa: impl Fn(usize) -> f64,
    dir_weight: impl Fn(i32, i32, i32, usize, usize, usize) -> f64,
    skew: f64,
    sigma: impl Fn(usize) -> f64,
) -> SgDia<f64> {
    let pat = Pattern::p7();
    let taps: Vec<Tap> = pat.taps().to_vec();
    // Precompute transmissibilities per (cell, tap) to keep the matrix
    // symmetric up to the skew term.
    SgDia::from_fn(grid, pat, Layout::Soa, |cell, i, j, k, t| {
        let tap = taps[t];
        if tap.is_diagonal() {
            let mut acc = sigma(cell);
            for tp in &taps {
                if tp.is_diagonal() || !grid.contains_offset(i, j, k, tp.dx, tp.dy, tp.dz) {
                    continue;
                }
                let nb = (cell as i64 + grid.stride(tp.dx, tp.dy, tp.dz)) as usize;
                let w = dir_weight(tp.dx, tp.dy, tp.dz, i, j, k);
                let tvl = harmonic(kappa(cell), kappa(nb)) * w;
                // Upwind skew strengthens the diagonal symmetrically with
                // the off-diagonal weakening below.
                acc += tvl * (1.0 + skew * downwind(tp.dx, tp.dy, tp.dz));
            }
            acc
        } else {
            let nb = (cell as i64 + grid.stride(tap.dx, tap.dy, tap.dz)) as usize;
            let w = dir_weight(tap.dx, tap.dy, tap.dz, i, j, k);
            let tvl = harmonic(kappa(cell), kappa(nb)) * w;
            -tvl * (1.0 - skew * downwind(tap.dx, tap.dy, tap.dz))
        }
    })
}

/// +1 on "downstream" faces, −1 upstream: the sign pattern of a first-order
/// upwind convection term.
#[inline]
fn downwind(dx: i32, dy: i32, dz: i32) -> f64 {
    (dx + dy + dz).signum() as f64
}

/// rhd: smooth opacity field spanning ~15 decades (Fig. 1 shows 1e-18…1e9
/// for the real matrix); low anisotropy; absorption keeps it SPD. CG.
fn rhd(n: usize) -> SgDia<f64> {
    let grid = Grid3::cube(n);
    // Heavily smoothed field: opacities vary over many decades globally
    // but slowly in space (low anisotropy), as after decoupling from the
    // 3T system.
    // Coarse-lattice fields: the 14-decade opacity span is resolved over
    // a handful of physical features regardless of grid size, so the
    // per-cell contrast stays low ("relatively isotropic after
    // decoupling", Table 3) at every resolution.
    let field = Field::interpolated(grid, 0x7d01, 2);
    let kappa = move |c: usize| field.log_coefficient(c, 1.0e-5, 1.0e9);
    let sfield = Field::interpolated(grid, 0x7d02, 2);
    let sigma = move |c: usize| sfield.log_coefficient(c, 1.0e-9, 1.0e3);
    diffusion7(grid, kappa, |_, _, _, _, _, _| 1.0, 0.0, sigma)
}

/// oil: layered log-normal permeability over ~4 decades (in FP16 range),
/// strong vertical anisotropy (thin cells: 1/dz² ≫ 1/dx²), mild upwind
/// skew → GMRES.
fn oil(n: usize) -> SgDia<f64> {
    let grid = Grid3::cube(n);
    let field = Field::layered(grid, 0x011, 0.4);
    let kappa = move |c: usize| field.log_coefficient(c, 1.0e-3, 10.0);
    let dir = |dx: i32, dy: i32, dz: i32, _: usize, _: usize, _: usize| {
        if dz != 0 {
            30.0 // thin layers: vertical coupling dominates
        } else if dy != 0 {
            1.0
        } else {
            let _ = (dx, dy);
            1.0
        }
    };
    diffusion7(grid, kappa, dir, 0.15, |_| 1.0e-2)
}

/// weather: 3d19 Helmholtz-like operator on a vertically stretched grid;
/// coefficients scaled so the maxima slightly exceed FP16_MAX ("near");
/// nonsymmetric advection → GMRES.
fn weather(n: usize) -> SgDia<f64> {
    let nz = (n / 2).max(4);
    let grid = Grid3::new(n, n, nz);
    let pat = Pattern::p19();
    let taps: Vec<Tap> = pat.taps().to_vec();
    let topo = Field::smooth_gaussian(grid, 0xa7a0, 3);
    // Stretched vertical spacing: thin near the "surface" k = 0.
    let dz = |k: usize| 0.05 + 0.10 * (k as f64) / (nz as f64);
    // Latitude-dependent horizontal spacing (narrower toward j-poles).
    let dxy = |j: usize| {
        let lat = (j as f64 / (grid.ny - 1).max(1) as f64 - 0.5) * std::f64::consts::PI * 0.9;
        1.0 * lat.cos().max(0.2)
    };
    const SCALE: f64 = 250.0; // puts the max coupling just past FP16_MAX (~1e5)
    let skew = 0.1;
    SgDia::from_fn(grid, pat, Layout::Soa, |cell, i, j, k, t| {
        let tap = taps[t];
        let coupling = |dx: i32, dy: i32, dzo: i32| -> f64 {
            let mut c = 1.0;
            if dzo != 0 {
                let kk = if dzo < 0 { k - 1 } else { k };
                c *= 1.0 / (dz(kk) * dz(kk));
            }
            if dx != 0 || dy != 0 {
                let h = dxy(j);
                c *= 1.0 / (h * h);
            }
            let axes = (dx != 0) as u8 + (dy != 0) as u8 + (dzo != 0) as u8;
            if axes >= 2 {
                c *= 0.25; // edge neighbors couple weaker than faces
            }
            let m = 1.0 + 0.3 * topo.at(cell).clamp(-2.5, 2.5);
            c * m * SCALE
        };
        if tap.is_diagonal() {
            let mut acc = 0.0;
            for tp in &taps {
                if tp.is_diagonal() || !grid.contains_offset(i, j, k, tp.dx, tp.dy, tp.dz) {
                    continue;
                }
                acc += coupling(tp.dx, tp.dy, tp.dz) * (1.0 + skew * downwind(tp.dx, tp.dy, tp.dz));
            }
            // Helmholtz term keeps the operator definite.
            acc + 0.05 * SCALE
        } else {
            -coupling(tap.dx, tap.dy, tap.dz) * (1.0 - skew * downwind(tap.dx, tap.dy, tap.dz))
        }
    })
}

/// Generic coupled multi-component diffusion on 3d7: component `c`
/// diffuses with its own coefficient field; the diagonal block adds a
/// symmetric positive exchange matrix between adjacent components.
fn coupled_diffusion(
    grid: Grid3,
    comp_kappa: Vec<Box<dyn Fn(usize) -> f64>>,
    exchange: impl Fn(usize, usize, usize) -> f64, // (cell, c_lo, c_hi) -> ω ≥ 0
    dirz_weight: f64,
    skew: f64,
    sigma: impl Fn(usize, usize) -> f64,
) -> SgDia<f64> {
    let r = comp_kappa.len();
    let pat = Pattern::p7().with_components(r);
    let taps: Vec<Tap> = pat.taps().to_vec();
    SgDia::from_fn(grid, pat, Layout::Soa, |cell, i, j, k, t| {
        let tap = taps[t];
        let (co, ci) = (tap.cout as usize, tap.cin as usize);
        if !tap.is_center() {
            // Spatial coupling is component-diagonal.
            if co != ci {
                return 0.0;
            }
            let nb = (cell as i64 + grid.stride(tap.dx, tap.dy, tap.dz)) as usize;
            let w = if tap.dz != 0 { dirz_weight } else { 1.0 };
            let tvl = harmonic(comp_kappa[co](cell), comp_kappa[co](nb)) * w;
            return -tvl * (1.0 - skew * downwind(tap.dx, tap.dy, tap.dz));
        }
        if co == ci {
            // Diagonal: spatial row sum + absorption + exchange sums.
            let mut acc = sigma(cell, co);
            for (dx, dy, dz) in
                [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)]
            {
                if !grid.contains_offset(i, j, k, dx, dy, dz) {
                    continue;
                }
                let nb = (cell as i64 + grid.stride(dx, dy, dz)) as usize;
                let w = if dz != 0 { dirz_weight } else { 1.0 };
                acc += harmonic(comp_kappa[co](cell), comp_kappa[co](nb))
                    * w
                    * (1.0 + skew * downwind(dx, dy, dz));
            }
            for other in 0..r {
                if other != co {
                    acc += exchange(cell, co.min(other), co.max(other));
                }
            }
            acc
        } else {
            -exchange(cell, co.min(ci), co.max(ci))
        }
    })
}

/// rhd-3T: radiation/electron/ion temperatures with ~12 decades between
/// the diffusion scales and rough (barely smoothed) coefficient fields —
/// the "highly anisotropic, multi-scale" hard case. CG.
fn rhd3t(n: usize) -> SgDia<f64> {
    let grid = Grid3::with_components(n, n, n, 3);
    let sg = Grid3::cube(n);
    // Unsmoothed fields: the 3T coupling is non-smooth (multi-physics
    // interfaces), the source of its "highly anisotropic" label.
    let f0 = Field::smooth_gaussian(sg, 0x371, 0);
    let f1 = Field::smooth_gaussian(sg, 0x372, 0);
    let f2 = Field::smooth_gaussian(sg, 0x373, 0);
    let kap: Vec<Box<dyn Fn(usize) -> f64>> = vec![
        Box::new(move |c| f0.log_coefficient(c, 1.0e2, 1.0e9)), // radiation
        Box::new(move |c| f1.log_coefficient(c, 1.0e-4, 1.0e2)), // electron
        Box::new(move |c| f2.log_coefficient(c, 1.0e-10, 1.0e-3)), // ion
    ];
    let xf = Field::smooth_gaussian(sg, 0x374, 1);
    let exchange = move |cell: usize, lo: usize, hi: usize| {
        if lo + 1 != hi {
            return 0.0; // radiation couples e⁻, e⁻ couples ions
        }
        let base = if lo == 0 { 1.0e3 } else { 1.0e-2 };
        base * xf.log_coefficient(cell, 1.0e-2, 1.0e2)
    };
    coupled_diffusion(grid, kap, exchange, 1.0, 0.0, |_, c| [1.0e1, 1.0e-3, 1.0e-7][c])
}

/// oil-4C: four-component reservoir system; magnitudes pushed near the
/// FP16 boundary; mildly nonsymmetric → GMRES.
fn oil4c(n: usize) -> SgDia<f64> {
    let grid = Grid3::with_components(n, n, n, 4);
    let sg = Grid3::cube(n);
    let base = Field::layered(sg, 0x4c0, 0.5);
    let mut kap: Vec<Box<dyn Fn(usize) -> f64>> = Vec::new();
    for c in 0..4 {
        let f = base.clone();
        // Component mobility factors spread the magnitudes; the largest
        // couplings land just past FP16_MAX ("near" distance).
        let mobility = [5.0e3, 1.2e3, 2.0e2, 8.0][c];
        kap.push(Box::new(move |cell| mobility * f.log_coefficient(cell, 1.0e-2, 3.0)));
    }
    let xf = Field::smooth_gaussian(sg, 0x4c1, 2);
    let exchange =
        move |cell: usize, _lo: usize, _hi: usize| 5.0 * xf.log_coefficient(cell, 0.1, 10.0);
    coupled_diffusion(grid, kap, exchange, 20.0, 0.12, |_, _| 1.0)
}

/// solid-3D: linear elasticity on 3d15 — for each neighbor offset with
/// unit direction `d̂`, the coupling block is `w (μ I + (λ+μ) d̂ d̂ᵀ)`;
/// the diagonal block accumulates all couplings (block-dominant SPD).
/// Lamé parameters ~1e7 put every value far outside FP16. CG.
fn solid3d(n: usize) -> SgDia<f64> {
    let grid = Grid3::with_components(n, n, n, 3);
    let pat = Pattern::p15().with_components(3);
    let taps: Vec<Tap> = pat.taps().to_vec();
    let mu = 8.0e6;
    let lam = 1.2e7;
    let sg = Grid3::cube(n);
    let stiff = Field::smooth_gaussian(sg, 0x5011, 4);
    let block = move |dx: i32, dy: i32, dz: i32, co: usize, ci: usize| -> f64 {
        let len2 = (dx * dx + dy * dy + dz * dz) as f64;
        let w = if len2 <= 1.0 { 1.0 } else { 1.0 / 3.0 }; // corners weaker
        let d = [dx as f64, dy as f64, dz as f64];
        let dd = d[co] * d[ci] / len2;
        w * (if co == ci { mu } else { 0.0 } + (lam + mu) * dd)
    };
    let sgrid = sg;
    let modulation = move |cell: usize| 1.0 + 0.2 * stiff.at(cell).clamp(-2.5, 2.5) * 0.4;
    SgDia::from_fn(grid, pat, Layout::Soa, |cell, i, j, k, t| {
        let tap = taps[t];
        let (co, ci) = (tap.cout as usize, tap.cin as usize);
        if !tap.is_center() {
            // Symmetric edge stiffness: geometric mean of the two cells.
            let nb = (cell as i64 + sgrid.stride(tap.dx, tap.dy, tap.dz)) as usize;
            let m = (modulation(cell) * modulation(nb)).sqrt();
            return -block(tap.dx, tap.dy, tap.dz, co, ci) * m;
        }
        // Diagonal block: sum of all neighbor blocks with matching edge
        // factors (missing neighbors contribute eliminated-Dirichlet style
        // with the cell's own factor) plus a small stabilizing shift.
        let mut acc = 0.0;
        for tp in &taps {
            if tp.is_center() || tp.cout as usize != co || tp.cin as usize != ci {
                continue;
            }
            let m = if sgrid.contains_offset(i, j, k, tp.dx, tp.dy, tp.dz) {
                let nb = (cell as i64 + sgrid.stride(tp.dx, tp.dy, tp.dz)) as usize;
                (modulation(cell) * modulation(nb)).sqrt()
            } else {
                modulation(cell)
            };
            acc += block(tp.dx, tp.dy, tp.dz, co, ci) * m;
        }
        acc + if co == ci { 0.05 * mu * modulation(cell) } else { 0.0 }
    })
}
