//! The paper's eight test problems (§6.1, Table 3), as synthetic
//! structured-grid generators.
//!
//! The original matrices come from production codes (GRAPES-MESO,
//! OpenCAEPoro, radiation-hydrodynamics packages) and a Zenodo archive we
//! substitute with generators that reproduce each problem's *numerical
//! signature* — the properties the paper's analysis actually depends on:
//!
//! | problem       | PDE    | pattern | out-of-FP16 | dist | aniso | solver |
//! |---------------|--------|---------|-------------|------|-------|--------|
//! | laplace27     | scalar | 3d27    | no          | –    | none  | CG     |
//! | laplace27e8   | scalar | 3d27    | yes         | far  | none  | CG     |
//! | rhd           | scalar | 3d7     | yes         | far  | low   | CG     |
//! | oil           | scalar | 3d7     | no          | –    | high  | GMRES  |
//! | weather       | scalar | 3d19    | yes         | near | high  | GMRES  |
//! | rhd-3T        | vector3| 3d7     | yes         | far  | high  | CG     |
//! | oil-4C        | vector4| 3d7     | yes         | near | high  | GMRES  |
//! | solid-3D      | vector3| 3d15    | yes         | far  | low   | CG     |
//!
//! All generators are deterministic (fixed seeds) and size-parameterized,
//! so a laptop-scale run exhibits the same FP16 interactions the paper's
//! 637M-dof weather case does.
//!
//! The [`metrics`] module computes the numerical-feature statistics the
//! paper reports: nonzero-magnitude histograms (Fig. 1), the multi-scale
//! anisotropy measure (Fig. 5), FP16 range classification (Table 3
//! "Out-of-FP16?" / "Dist."), and a Lanczos condition-number estimate.

#![warn(missing_docs)]
mod build;
pub mod evolve;
mod field;
pub mod metrics;

pub use build::{Problem, ProblemKind, SolverKind};
pub use evolve::{step_rhs, DriftPreset, Evolution};

#[cfg(test)]
mod tests;
