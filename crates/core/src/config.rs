//! Multigrid configuration: precision policy, scaling strategy, smoother.

use fp16mg_fp::Precision;
use fp16mg_sgdia::audit::TruncationPolicy;
use fp16mg_sgdia::kernels::Par;
use fp16mg_sgdia::scaling::GChoice;
use fp16mg_sgdia::Layout;

/// Which storage precision each level's matrix is truncated to
/// (the paper's `D`).
#[derive(Clone, Debug, PartialEq)]
pub enum StoragePolicy {
    /// Every level uses the same precision.
    Uniform(Precision),
    /// FP16 on levels `0..shift_levid`, the given higher precision from
    /// `shift_levid` to the coarsest — the underflow guard of §4.3.
    /// `shift_levid = usize::MAX` stores everything in FP16.
    Fp16Until {
        /// First level stored in `coarse` precision.
        shift_levid: usize,
        /// Precision for levels `>= shift_levid` (usually FP32, the
        /// preconditioner computation precision).
        coarse: Precision,
    },
    /// Explicit precision per level (the last entry repeats for deeper
    /// levels).
    PerLevel(Vec<Precision>),
    /// Adaptive `shift_levid`: during setup the hierarchy audits each
    /// level's FP16 truncation (see [`fp16mg_sgdia::audit`]) and switches
    /// to `coarse` at the first level whose underflow-loss fraction —
    /// nonzero entries that would flush to zero or to the subnormal range
    /// — exceeds `max_underflow` (or whose truncation would saturate).
    /// The measured, data-driven version of the static §4.3 knob; the
    /// decision lands in `MgInfo::shift_decision`.
    AutoShift {
        /// Precision for the levels past the chosen switch point.
        coarse: Precision,
        /// Underflow-loss fraction in `[0, 1]` above which a level is
        /// switched to `coarse` (0.05 is a reasonable default: a level
        /// losing more than 5% of its couplings has stopped resembling
        /// its operator).
        max_underflow: f64,
    },
}

impl StoragePolicy {
    /// Resolves the precision of `level`. An empty `PerLevel` list (which
    /// [`MgConfig::validate`] rejects before setup) resolves to FP32.
    ///
    /// For [`StoragePolicy::AutoShift`] this returns the *pre-resolution*
    /// answer (FP16 everywhere): the switch point does not exist until
    /// setup has audited the actual hierarchy, after which the resolved
    /// policy is a [`StoragePolicy::Fp16Until`] recorded in the
    /// hierarchy's config.
    pub fn precision_for(&self, level: usize) -> Precision {
        match self {
            StoragePolicy::Uniform(p) => *p,
            StoragePolicy::AutoShift { .. } => Precision::F16,
            StoragePolicy::Fp16Until { shift_levid, coarse } => {
                if level < *shift_levid {
                    Precision::F16
                } else {
                    *coarse
                }
            }
            StoragePolicy::PerLevel(v) => {
                // Non-emptiness is enforced by MgConfig::validate; fall
                // back to the computation precision rather than panicking
                // if an unvalidated policy slips through.
                debug_assert!(!v.is_empty(), "empty PerLevel policy");
                v.get(level).or_else(|| v.last()).copied().unwrap_or(Precision::F32)
            }
        }
    }
}

/// Out-of-range treatment (§4.1, §4.3, Fig. 6 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleStrategy {
    /// Direct truncation, no scaling: overflows to ±∞ and crashes the
    /// solve with NaN on out-of-range problems (`K64P32D16-none`).
    None,
    /// The paper's strategy (Algorithm 1): complete the high-precision
    /// setup first, then scale each level per Theorem 4.1 — but only
    /// levels whose values actually exceed the storage range.
    SetupThenScale,
    /// The inferior alternative of §4.3: scale the finest matrix once,
    /// run the Galerkin chain on the scaled operator, truncate all levels
    /// directly. Coarse levels may still leave the FP16 range (overflow or
    /// underflow) because a single global scaling cannot adapt per level.
    ScaleThenSetup,
}

/// Smoother selection (§4.2: SymGS and ILU are typical; Gauss–Seidel
/// variants are what StructMG/PFMG use in practice).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SmootherKind {
    /// Weighted (block-)Jacobi: `x += ω D⁻¹ (b − A x)`.
    Jacobi {
        /// Damping weight `ω` (2/3–0.9 typical).
        weight: f64,
    },
    /// Forward Gauss–Seidel pre-smoothing, backward post-smoothing
    /// (`Sᵀ` on the upward pass, Algorithm 3 line 17); the resulting
    /// V-cycle is symmetric, as CG requires.
    GsSymmetric,
    /// Full SymGS (forward + backward sweep) for both pre- and
    /// post-smoothing — heavier per sweep, the HPCG-style configuration.
    SymGs,
    /// ILU(0): factors computed in high precision during setup, truncated
    /// to the storage precision, applied with the mixed-precision
    /// triangular kernels (§4.1: "data in smoothers, such as the
    /// factorized L̃, Ũ in ILU, are calculated in iterative precision
    /// followed by truncation to storage precision"). Scalar problems
    /// only; vector PDEs fall back to [`SmootherKind::GsSymmetric`]. The
    /// same factors smooth both passes, so the V-cycle is mildly
    /// nonsymmetric — pair with GMRES or Richardson.
    Ilu0,
    /// Chebyshev-accelerated Jacobi of the given polynomial degree
    /// (hypre-style interval `[λmax/30, 1.1·λmax]`, λmax estimated by
    /// power iteration during setup). Each degree costs one SpMV plus
    /// vector updates — a *bandwidth-bound* smoother, so FP16 storage
    /// pays off even on a single latency-rich core where Gauss–Seidel's
    /// sequential recurrence hides the traffic reduction. Symmetric and
    /// SPD-preserving (CG-safe).
    Chebyshev {
        /// Polynomial degree (2–4 typical).
        degree: usize,
    },
}

/// Coarsening policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Coarsening {
    /// ×2 in every direction (the default; StructMG's high-dimensional
    /// coarsening keeps C_G ≤ 8/7).
    Full,
    /// PFMG-style semicoarsening: per level, coarsen only the axes whose
    /// mean face-coupling strength is at least `threshold` times the
    /// strongest axis's. Collapses anisotropy level by level, restoring
    /// point-smoother efficiency on strongly anisotropic operators at the
    /// cost of higher grid complexity.
    Semi {
        /// Relative strength cutoff in (0, 1]; hypre's PFMG default idea
        /// is "coarsen the strong direction", ~0.5 works well.
        threshold: f64,
    },
}

/// Multigrid cycle shape. The paper evaluates V-cycles exclusively; W/F
/// are provided as extensions — they spend more time on coarse levels,
/// which *raises* the fraction of FP16-compressible work (the effect the
/// related Ginkgo work exploits) at higher cost per application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cycle {
    /// V-cycle (γ = 1) — the paper's configuration.
    V,
    /// W-cycle (γ = 2).
    W,
    /// F-cycle: one F-visit then one V-visit per level.
    F,
}

/// Runtime precision-recovery policy: what the hierarchy does when a
/// reduced-precision level is caught producing non-finite output or a
/// precision-attributable stall (the self-healing companion to the static
/// `shift_levid` guard of §4.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Master switch. When off, `Mg` never scans its own output and never
    /// promotes — the paper's original fail-fast behavior.
    pub enabled: bool,
    /// Total promotion budget across the hierarchy's lifetime. Each
    /// promotion widens one level 16-bit → FP32, so a budget the size of
    /// the hierarchy degenerates to the FP32 baseline at worst.
    pub max_promotions: usize,
    /// If a promoted level *still* needs scaling (values beyond the FP32
    /// range), retry with `G` multiplied by this factor in `(0, 1]` —
    /// a tighter margin below `G_max` than the first attempt used.
    pub g_tighten: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { enabled: true, max_promotions: 4, g_tighten: 0.5 }
    }
}

impl RecoveryPolicy {
    /// Recovery switched off: detect nothing, promote nothing.
    pub fn disabled() -> Self {
        RecoveryPolicy { enabled: false, ..Default::default() }
    }
}

/// Integrity-sentinel (ABFT) policy: per-level checksums and sum
/// invariants over the stored coefficient planes, verified on demand or on
/// a V-cycle cadence, with localized in-place repair of a corrupted level
/// from its retained high-precision parent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntegrityPolicy {
    /// Compute sentinels at setup. Costs one pass over each stored level
    /// (24 bytes of metadata per coefficient plane); without them neither
    /// verification nor repair is possible.
    pub sentinels: bool,
    /// Verify every `check_every` V-cycles during `apply` (0 = never
    /// periodically; verification still runs on demand and on solver
    /// anomalies when `verify_on_anomaly` is set). Each sweep charges one
    /// V-cycle to the cycle counter so session budgets see the work.
    pub check_every: usize,
    /// Run a verify-and-repair sweep when the Krylov solver reports a
    /// health anomaly (breakdown or precision-attributable stagnation)
    /// through the preconditioner hook.
    pub verify_on_anomaly: bool,
    /// Retain each narrow (16-bit) level's high-precision scaled parent
    /// operator so a corrupted plane can be *repaired* — re-truncated
    /// bit-identically — instead of promoted or rebuilt. Costs the f64
    /// parent copy per narrow level; off by default.
    pub retain_parents: bool,
    /// Total repair budget across the hierarchy's lifetime (a flapping
    /// memory fault must eventually escalate to the retry ladder rather
    /// than repair forever).
    pub max_repairs: usize,
}

impl Default for IntegrityPolicy {
    fn default() -> Self {
        IntegrityPolicy {
            sentinels: true,
            check_every: 0,
            verify_on_anomaly: true,
            retain_parents: false,
            max_repairs: 8,
        }
    }
}

impl IntegrityPolicy {
    /// Sentinels off entirely: no setup pass, no metadata, no repair.
    pub fn disabled() -> Self {
        IntegrityPolicy {
            sentinels: false,
            check_every: 0,
            verify_on_anomaly: false,
            retain_parents: false,
            max_repairs: 0,
        }
    }

    /// Full ABFT: sentinels, periodic verification every `check_every`
    /// V-cycles, anomaly-triggered verification, and parent retention for
    /// localized repair.
    pub fn armed(check_every: usize) -> Self {
        IntegrityPolicy {
            sentinels: true,
            check_every,
            verify_on_anomaly: true,
            retain_parents: true,
            max_repairs: 8,
        }
    }
}

/// A configuration rejected by [`MgConfig::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `max_levels` is zero — a hierarchy needs at least the finest level.
    NoLevels,
    /// `Fp16Until::shift_levid` exceeds `max_levels`, so the switch to the
    /// coarse precision could never fire (use `usize::MAX` to mean
    /// "all FP16" explicitly).
    ShiftBeyondLevels {
        /// The configured shift level.
        shift_levid: usize,
        /// The configured maximum level count.
        max_levels: usize,
    },
    /// Both `nu1` and `nu2` are zero: the cycle would do no smoothing at
    /// all and cannot reduce high-frequency error.
    NoSmoothing,
    /// A `PerLevel` storage policy with an empty precision list.
    EmptyPerLevel,
    /// A fixed scaling constant `G` that is not positive and finite.
    /// (Theorem 4.1 additionally requires `G < G_max`, which depends on
    /// the matrix; `scale_symmetric` clamps to `G_max / 2` at setup.)
    InvalidG {
        /// The offending value.
        g: f64,
    },
    /// A Jacobi damping weight that is not positive and finite.
    InvalidSmootherWeight {
        /// The offending value.
        weight: f64,
    },
    /// A Chebyshev smoother of degree zero.
    InvalidChebyshevDegree,
    /// A semicoarsening threshold outside `(0, 1]`.
    InvalidSemiThreshold {
        /// The offending value.
        threshold: f64,
    },
    /// A recovery `g_tighten` factor outside `(0, 1]`.
    InvalidGTighten {
        /// The offending value.
        g_tighten: f64,
    },
    /// An `AutoShift` underflow threshold outside `[0, 1]`.
    InvalidUnderflowThreshold {
        /// The offending value.
        threshold: f64,
    },
    /// An integrity policy that retains repair parents (or schedules
    /// periodic/anomaly verification) without computing sentinels — there
    /// would be nothing to verify against, so the retained memory and the
    /// verification cadence could never be used.
    IntegrityWithoutSentinels,
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::NoLevels => write!(f, "max_levels must be at least 1"),
            ConfigError::ShiftBeyondLevels { shift_levid, max_levels } => write!(
                f,
                "shift_levid {shift_levid} exceeds max_levels {max_levels} \
                 (use usize::MAX for all-FP16)"
            ),
            ConfigError::NoSmoothing => {
                write!(f, "nu1 and nu2 are both zero: the cycle would never smooth")
            }
            ConfigError::EmptyPerLevel => write!(f, "PerLevel storage policy is empty"),
            ConfigError::InvalidG { g } => {
                write!(f, "fixed scaling constant G = {g} must be positive and finite")
            }
            ConfigError::InvalidSmootherWeight { weight } => {
                write!(f, "Jacobi weight {weight} must be positive and finite")
            }
            ConfigError::InvalidChebyshevDegree => {
                write!(f, "Chebyshev smoother degree must be at least 1")
            }
            ConfigError::InvalidSemiThreshold { threshold } => {
                write!(f, "semicoarsening threshold {threshold} must lie in (0, 1]")
            }
            ConfigError::InvalidGTighten { g_tighten } => {
                write!(f, "recovery g_tighten {g_tighten} must lie in (0, 1]")
            }
            ConfigError::InvalidUnderflowThreshold { threshold } => {
                write!(f, "AutoShift underflow threshold {threshold} must lie in [0, 1]")
            }
            ConfigError::IntegrityWithoutSentinels => write!(
                f,
                "integrity policy retains parents or schedules verification \
                 but computes no sentinels to verify against"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Complete multigrid configuration.
#[derive(Clone, Debug)]
pub struct MgConfig {
    /// Maximum number of levels (including the finest).
    pub max_levels: usize,
    /// Stop coarsening when a grid has at most this many cells; that level
    /// is solved directly by dense LU.
    pub min_coarse_cells: usize,
    /// Smoother kind.
    pub smoother: SmootherKind,
    /// Pre-smoothing sweeps ν₁ (the paper uses 1 throughout, §8).
    pub nu1: usize,
    /// Post-smoothing sweeps ν₂.
    pub nu2: usize,
    /// Storage precision policy (`D`).
    pub storage: StoragePolicy,
    /// Out-of-range strategy.
    pub scale: ScaleStrategy,
    /// Scaling constant policy.
    pub g_choice: GChoice,
    /// Matrix memory layout (SOA enables the SIMD kernels, §5.1).
    pub layout: Layout,
    /// Kernel parallelism.
    pub par: Par,
    /// Cycle shape.
    pub cycle: Cycle,
    /// Coarsening policy.
    pub coarsening: Coarsening,
    /// Runtime precision-recovery policy.
    pub recovery: RecoveryPolicy,
    /// Integrity-sentinel (ABFT) policy.
    pub integrity: IntegrityPolicy,
    /// Out-of-range treatment on the truncation store path. The default
    /// ([`TruncationPolicy::Saturate`]) clamps instead of storing ±∞;
    /// [`TruncationPolicy::Reject`] turns any saturating entry into a
    /// typed setup error. Ignored under [`ScaleStrategy::None`], whose
    /// entire point is to exhibit the unguarded IEEE overflow.
    pub truncation: TruncationPolicy,
}

impl Default for MgConfig {
    fn default() -> Self {
        MgConfig {
            max_levels: 10,
            min_coarse_cells: 64,
            smoother: SmootherKind::GsSymmetric,
            nu1: 1,
            nu2: 1,
            storage: StoragePolicy::Uniform(Precision::F32),
            scale: ScaleStrategy::SetupThenScale,
            g_choice: GChoice::Auto,
            layout: Layout::Soa,
            par: Par::Seq,
            cycle: Cycle::V,
            coarsening: Coarsening::Full,
            recovery: RecoveryPolicy::default(),
            integrity: IntegrityPolicy::default(),
            truncation: TruncationPolicy::default(),
        }
    }
}

impl MgConfig {
    /// The paper's headline configuration: FP16 storage on every level,
    /// setup-then-scale, SOA layout.
    pub fn d16() -> Self {
        MgConfig { storage: StoragePolicy::Uniform(Precision::F16), ..Default::default() }
    }

    /// Full-FP32 preconditioner (the `K64P32D32` baseline).
    pub fn d32() -> Self {
        MgConfig { storage: StoragePolicy::Uniform(Precision::F32), ..Default::default() }
    }

    /// Full-FP64 preconditioner storage (for `Full64` baselines, paired
    /// with `Pr = f64`).
    pub fn d64() -> Self {
        MgConfig { storage: StoragePolicy::Uniform(Precision::F64), ..Default::default() }
    }

    /// BF16 storage (§8 comparison).
    pub fn dbf16() -> Self {
        MgConfig { storage: StoragePolicy::Uniform(Precision::BF16), ..Default::default() }
    }

    /// FP16 storage with the audit-driven adaptive `shift_levid`: levels
    /// stay FP16 until the measured underflow loss crosses 5%, then
    /// switch to FP32.
    pub fn d16_auto() -> Self {
        MgConfig {
            storage: StoragePolicy::AutoShift { coarse: Precision::F32, max_underflow: 0.05 },
            ..Default::default()
        }
    }

    /// The economy-tier variant of this configuration, used by the serve
    /// pool's load shedder: storage becomes FP16 below `shift_levid`
    /// (F32 coarse), and the integrity layer stops retaining
    /// high-precision parents — under overload, the memory for repair
    /// sources is better spent on throughput. Everything else (smoother,
    /// cycle shape, scaling) is preserved, and the result is validated so
    /// a shed-time downgrade can never smuggle in a contradiction.
    ///
    /// # Errors
    /// The first [`ConfigError`] the degraded configuration fails on
    /// (e.g. [`ConfigError::ShiftBeyondLevels`]).
    pub fn economize(&self, shift_levid: usize) -> Result<MgConfig, ConfigError> {
        let mut cfg = self.clone();
        cfg.storage = StoragePolicy::Fp16Until { shift_levid, coarse: Precision::F32 };
        cfg.integrity.retain_parents = false;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the configuration for contradictions before any setup work
    /// runs. [`crate::Mg::setup`] calls this first, so a bad configuration
    /// fails with a [`ConfigError`] instead of a panic (or a silently
    /// useless hierarchy) deep inside the Galerkin chain.
    ///
    /// # Errors
    /// The first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_levels == 0 {
            return Err(ConfigError::NoLevels);
        }
        if let StoragePolicy::Fp16Until { shift_levid, .. } = self.storage {
            if shift_levid != usize::MAX && shift_levid > self.max_levels {
                return Err(ConfigError::ShiftBeyondLevels {
                    shift_levid,
                    max_levels: self.max_levels,
                });
            }
        }
        if let StoragePolicy::PerLevel(v) = &self.storage {
            if v.is_empty() {
                return Err(ConfigError::EmptyPerLevel);
            }
        }
        if self.nu1 == 0 && self.nu2 == 0 {
            return Err(ConfigError::NoSmoothing);
        }
        if let GChoice::Fixed(g) = self.g_choice {
            // `!is_finite()` first so NaN is caught before any ordering test.
            if !g.is_finite() || g <= 0.0 {
                return Err(ConfigError::InvalidG { g });
            }
        }
        match self.smoother {
            SmootherKind::Jacobi { weight } if !weight.is_finite() || weight <= 0.0 => {
                return Err(ConfigError::InvalidSmootherWeight { weight });
            }
            SmootherKind::Chebyshev { degree: 0 } => {
                return Err(ConfigError::InvalidChebyshevDegree);
            }
            _ => {}
        }
        if let Coarsening::Semi { threshold } = self.coarsening {
            if threshold.is_nan() || threshold <= 0.0 || threshold > 1.0 {
                return Err(ConfigError::InvalidSemiThreshold { threshold });
            }
        }
        let gt = self.recovery.g_tighten;
        if gt.is_nan() || gt <= 0.0 || gt > 1.0 {
            return Err(ConfigError::InvalidGTighten { g_tighten: gt });
        }
        if let StoragePolicy::AutoShift { max_underflow, .. } = self.storage {
            if max_underflow.is_nan() || !(0.0..=1.0).contains(&max_underflow) {
                return Err(ConfigError::InvalidUnderflowThreshold { threshold: max_underflow });
            }
        }
        let integ = &self.integrity;
        if !integ.sentinels
            && (integ.retain_parents || integ.check_every > 0 || integ.verify_on_anomaly)
        {
            return Err(ConfigError::IntegrityWithoutSentinels);
        }
        Ok(())
    }
}
