//! Outer-solver operator wrapper.

use fp16mg_fp::{Scalar, Storage};
use fp16mg_krylov::LinOp;
use fp16mg_sgdia::kernels::{self, Par};
use fp16mg_sgdia::SgDia;

/// Adapts a structured matrix to the Krylov [`LinOp`] interface in the
/// iterative precision `K` (the outer solver's `A x` of Algorithm 2
/// line 3, always performed on the original high-precision matrix).
pub struct MatOp<'a, S: Storage> {
    a: &'a SgDia<S>,
    par: Par,
}

impl<'a, S: Storage> MatOp<'a, S> {
    /// Wraps a matrix with the given kernel parallelism.
    pub fn new(a: &'a SgDia<S>, par: Par) -> Self {
        MatOp { a, par }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &SgDia<S> {
        self.a
    }
}

impl<S: Storage, K: Scalar> LinOp<K> for MatOp<'_, S> {
    fn rows(&self) -> usize {
        self.a.rows()
    }
    fn apply(&self, x: &[K], y: &mut [K]) {
        kernels::spmv(self.a, x, y, self.par);
    }
}
