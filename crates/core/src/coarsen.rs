//! Galerkin coarsening: the structured triple-matrix product `R A P`.
//!
//! This is the essential setup-phase computation (Algorithm 1 line 2) and
//! the reason *setup-then-scale* exists: the chain of triple products is
//! numerically delicate, so the paper insists it run in high precision,
//! untouched by any scaling (§4.3). The whole function therefore operates
//! in `f64`.
//!
//! With trilinear `P` and `R = Pᵀ`, a radius-1 fine stencil produces a
//! radius-1 (≤ 27-point) coarse stencil: `A_c(i_c → j_c)` accumulates
//! `w_R · a · w_P` over fine cells `f_i` interpolated by `i_c` and fine
//! neighbors `f_j` interpolated by `j_c`, and `|j_c − i_c| ≤ 1` per axis.
//! This reproduces the footnote-5 behavior: 3d7/3d15/3d19 patterns expand
//! to 3d27 on coarser grids.

use fp16mg_sgdia::SgDia;
use fp16mg_stencil::{Pattern, Tap};

use crate::transfer::{cell_parents_into, Parent};

/// Computes the Galerkin coarse operator `A_c = Pᵀ A P` in `f64`.
///
/// The result lives on `a.grid().coarsen()` with the full 27-point
/// pattern (replicated over component pairs for vector PDEs); taps whose
/// accumulated value is exactly zero remain stored (SG-DIA keeps the
/// pattern uniform).
///
/// # Panics
/// Panics if the fine pattern's radius exceeds 1 (standard structured
/// stencils; RAP output itself stays radius 1, so chains are closed).
pub fn galerkin_rap(a: &SgDia<f64>) -> SgDia<f64> {
    galerkin_rap_axes(a, (true, true, true))
}

/// [`galerkin_rap`] with per-axis coarsening selection (PFMG-style
/// semicoarsening): uncoarsened axes use identity transfer, so the coarse
/// operator keeps the fine resolution along them.
///
/// # Panics
/// As [`galerkin_rap`]; additionally if no axis is coarsenable.
pub fn galerkin_rap_axes(a: &SgDia<f64>, axes: (bool, bool, bool)) -> SgDia<f64> {
    assert!(a.pattern().radius() <= 1, "galerkin_rap supports radius-1 stencils");
    let fine = *a.grid();
    let coarse = fine.coarsen_axes(axes);
    assert_ne!(coarse, fine, "no axis was coarsened");
    let r = fine.components;
    let cpattern = if r == 1 { Pattern::p27() } else { Pattern::p27().with_components(r) };
    let mut ac = SgDia::<f64>::zeros(coarse, cpattern, a.layout());

    // Precompute the coarse tap index for every (offset, cout, cin).
    // Offsets are in [-1, 1]^3 → index (dz+1)*9 + (dy+1)*3 + (dx+1).
    let mut tap_of = vec![usize::MAX; 27 * r * r];
    for (t, tap) in ac.pattern().taps().iter().enumerate() {
        let o = ((tap.dz + 1) * 9 + (tap.dy + 1) * 3 + (tap.dx + 1)) as usize;
        tap_of[o * r * r + tap.cout as usize * r + tap.cin as usize] = t;
    }

    let ataps: Vec<Tap> = a.pattern().taps().to_vec();
    let mut rows: [Parent; 8] = [(0, (0, 0, 0), 0.0); 8];
    let mut cols: [Parent; 8] = [(0, (0, 0, 0), 0.0); 8];
    for (fcell, i, j, k) in fine.iter_cells() {
        // Coarse parents of the row cell (the R factor).
        let nrows = cell_parents_into(&fine, &coarse, i, j, k, &mut rows);
        for (t, tap) in ataps.iter().enumerate() {
            if !fine.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                continue;
            }
            let v = a.get(fcell, t);
            if v == 0.0 {
                continue;
            }
            let ni = (i as i64 + tap.dx as i64) as usize;
            let nj = (j as i64 + tap.dy as i64) as usize;
            let nk = (k as i64 + tap.dz as i64) as usize;
            // Coarse parents of the column cell (the P factor).
            let ncols = cell_parents_into(&fine, &coarse, ni, nj, nk, &mut cols);
            let comp = tap.cout as usize * r + tap.cin as usize;
            for &(_ccol, (ci, cj, ck), wp) in &cols[..ncols] {
                for &(crow, (ri, rj, rk), wr) in &rows[..nrows] {
                    let dx = ci as i64 - ri as i64;
                    let dy = cj as i64 - rj as i64;
                    let dz = ck as i64 - rk as i64;
                    debug_assert!(dx.abs() <= 1 && dy.abs() <= 1 && dz.abs() <= 1);
                    let o = ((dz + 1) * 9 + (dy + 1) * 3 + (dx + 1)) as usize;
                    let ct = tap_of[o * r * r + comp];
                    let old = ac.get(crow, ct);
                    ac.set(crow, ct, old + wr * v * wp);
                }
            }
        }
    }
    ac
}

/// Mean absolute face-coupling strength per axis (x, y, z): the semi-
/// coarsening direction detector. Only pure-axis (face) taps count; all
/// component pairs contribute.
pub fn directional_strength(a: &SgDia<f64>) -> [f64; 3] {
    let grid = a.grid();
    let mut sum = [0.0f64; 3];
    let mut cnt = [0usize; 3];
    for (t, tap) in a.pattern().taps().iter().enumerate() {
        let axis = match (tap.dx != 0, tap.dy != 0, tap.dz != 0) {
            (true, false, false) => 0,
            (false, true, false) => 1,
            (false, false, true) => 2,
            _ => continue,
        };
        for cell in 0..grid.cells() {
            sum[axis] += a.get(cell, t).abs();
        }
        cnt[axis] += grid.cells();
    }
    let mut out = [0.0f64; 3];
    for ax in 0..3 {
        out[ax] = if cnt[ax] > 0 { sum[ax] / cnt[ax] as f64 } else { 0.0 };
    }
    out
}
