//! Runtime-dispatched matrix storage.
//!
//! The storage precision varies *per level* (`shift_levid`), so a generic
//! parameter cannot express a hierarchy; instead each level owns a
//! [`StoredMatrix`] that dispatches the mixed-precision kernels over the
//! four storage formats at runtime. Dispatch cost is one match per kernel
//! call — negligible against a grid sweep.

use fp16mg_fp::{Bf16, Precision, Scalar, F16};
use fp16mg_grid::Grid3;
use fp16mg_sgdia::audit::{truncate_with_policy, TruncationError, TruncationPolicy};
use fp16mg_sgdia::kernels::{self, BlockDiagInv, Par};
use fp16mg_sgdia::{Layout, SgDia};
use fp16mg_stencil::Pattern;

/// A structured matrix stored in one of the supported precisions.
#[derive(Clone, Debug)]
pub enum StoredMatrix {
    /// IEEE 754 binary64 values.
    F64(SgDia<f64>),
    /// IEEE 754 binary32 values.
    F32(SgDia<f32>),
    /// IEEE 754 binary16 values (the paper's headline configuration).
    F16(SgDia<F16>),
    /// bfloat16 values (§8 comparison).
    BF16(SgDia<Bf16>),
}

macro_rules! dispatch {
    ($self:expr, $a:ident => $body:expr) => {
        match $self {
            StoredMatrix::F64($a) => $body,
            StoredMatrix::F32($a) => $body,
            StoredMatrix::F16($a) => $body,
            StoredMatrix::BF16($a) => $body,
        }
    };
}

impl StoredMatrix {
    /// Truncates a high-precision matrix into the requested storage
    /// precision and layout (Algorithm 1 lines 8/11).
    pub fn truncate(a: &SgDia<f64>, precision: Precision, layout: Layout) -> Self {
        let a = a.to_layout(layout);
        match precision {
            Precision::F64 => StoredMatrix::F64(a),
            Precision::F32 => StoredMatrix::F32(a.convert()),
            Precision::F16 => StoredMatrix::F16(a.convert()),
            Precision::BF16 => StoredMatrix::BF16(a.convert()),
        }
    }

    /// Truncates under a [`TruncationPolicy`]: the production store path.
    /// Unlike [`StoredMatrix::truncate`] (plain IEEE semantics, overflow
    /// to ±∞ — retained for the `ScaleStrategy::None` ablation, which
    /// *studies* that failure), out-of-range entries are rejected with a
    /// typed error, clamped to the largest finite value, or flushed,
    /// per the policy.
    ///
    /// # Errors
    /// [`TruncationError`] under [`TruncationPolicy::Reject`] when an
    /// entry cannot be stored finitely.
    pub fn truncate_policy(
        a: &SgDia<f64>,
        precision: Precision,
        layout: Layout,
        policy: TruncationPolicy,
    ) -> Result<Self, TruncationError> {
        let a = a.to_layout(layout);
        Ok(match precision {
            Precision::F64 => StoredMatrix::F64(truncate_with_policy(&a, policy)?),
            Precision::F32 => StoredMatrix::F32(truncate_with_policy(&a, policy)?),
            Precision::F16 => StoredMatrix::F16(truncate_with_policy(&a, policy)?),
            Precision::BF16 => StoredMatrix::BF16(truncate_with_policy(&a, policy)?),
        })
    }

    /// The storage precision tag.
    pub fn precision(&self) -> Precision {
        match self {
            StoredMatrix::F64(_) => Precision::F64,
            StoredMatrix::F32(_) => Precision::F32,
            StoredMatrix::F16(_) => Precision::F16,
            StoredMatrix::BF16(_) => Precision::BF16,
        }
    }

    /// The grid the matrix lives on.
    pub fn grid(&self) -> &Grid3 {
        dispatch!(self, a => a.grid())
    }

    /// The stencil pattern.
    pub fn pattern(&self) -> &Pattern {
        dispatch!(self, a => a.pattern())
    }

    /// Logical nonzero count (paper's `#nnz`).
    pub fn nnz(&self) -> usize {
        dispatch!(self, a => a.nnz())
    }

    /// Bytes of floating-point data stored.
    pub fn value_bytes(&self) -> usize {
        dispatch!(self, a => a.value_bytes())
    }

    /// True when no stored value overflowed to ±∞/NaN during truncation.
    pub fn all_finite(&self) -> bool {
        dispatch!(self, a => a.all_finite())
    }

    /// Classifies every stored value in one pass (zero / subnormal /
    /// normal / ±∞ / NaN, counted per stencil tap) — the diagnostic the
    /// recovery path uses to attribute a non-finite V-cycle output to a
    /// specific level.
    pub fn scan(&self) -> fp16mg_sgdia::scan::MatrixScan {
        dispatch!(self, a => fp16mg_sgdia::scan::scan(a))
    }

    /// Injects random bit-level faults into the stored values per `spec`,
    /// in whatever format the matrix is stored — the 16-bit formats the
    /// recovery path insures, and the wide rebuilds the retry ladder must
    /// be able to corrupt in tests.
    #[cfg(feature = "fault-inject")]
    pub fn inject_faults(
        &mut self,
        spec: &fp16mg_sgdia::fault::FaultSpec,
    ) -> fp16mg_sgdia::fault::FaultReport {
        dispatch!(self, a => fp16mg_sgdia::fault::inject(a, spec))
    }

    /// Forces the stored value at `(cell, tap)` to ±∞ (sign preserved).
    /// Returns whether a value was actually corrupted.
    #[cfg(feature = "fault-inject")]
    pub fn inject_inf_at(&mut self, cell: usize, tap: usize) -> bool {
        dispatch!(self, a => fp16mg_sgdia::fault::inject_inf_at(a, cell, tap))
    }

    /// Flips one bit of the stored value at `(cell, tap)` (`bit` modulo
    /// the storage width) — the single-event upset the integrity
    /// sentinels detect.
    #[cfg(feature = "fault-inject")]
    pub fn inject_bit_flip_at(&mut self, cell: usize, tap: usize, bit: u32) -> bool {
        dispatch!(self, a => fp16mg_sgdia::fault::inject_bit_flip_at(a, cell, tap, bit))
    }

    /// Flips one bit of the first nonzero entry of coefficient plane
    /// `tap`, guaranteeing the upset lands on a real coupling. Returns
    /// the corrupted cell.
    #[cfg(feature = "fault-inject")]
    pub fn inject_bit_flip_tap(&mut self, tap: usize, bit: u32) -> Option<usize> {
        dispatch!(self, a => fp16mg_sgdia::fault::inject_bit_flip_tap(a, tap, bit))
    }

    /// Computes the per-plane integrity sentinels of the stored values
    /// (FNV-1a bit-pattern checksum + FP64 sum invariants per tap).
    pub fn sentinels(&self) -> fp16mg_sgdia::sentinel::MatrixSentinels {
        dispatch!(self, a => fp16mg_sgdia::sentinel::compute(a))
    }

    /// Recomputes the sentinels and returns every coefficient plane that
    /// no longer matches `reference` (empty = intact).
    pub fn verify_sentinels(
        &self,
        reference: &fp16mg_sgdia::sentinel::MatrixSentinels,
    ) -> Vec<fp16mg_sgdia::sentinel::TapMismatch> {
        dispatch!(self, a => fp16mg_sgdia::sentinel::verify(a, reference))
    }

    /// `y = A x` with on-the-fly recovery to `P`.
    pub fn spmv<P: Scalar>(&self, x: &[P], y: &mut [P], par: Par) {
        dispatch!(self, a => kernels::spmv(a, x, y, par))
    }

    /// `r = b - A x`.
    pub fn residual<P: Scalar>(&self, b: &[P], x: &[P], r: &mut [P], par: Par) {
        dispatch!(self, a => kernels::residual(a, b, x, r, par))
    }

    /// One forward Gauss–Seidel sweep.
    pub fn gs_forward<P: Scalar>(&self, dinv: &BlockDiagInv<P>, b: &[P], x: &mut [P]) {
        dispatch!(self, a => kernels::gs_forward(a, dinv, b, x))
    }

    /// One backward Gauss–Seidel sweep.
    pub fn gs_backward<P: Scalar>(&self, dinv: &BlockDiagInv<P>, b: &[P], x: &mut [P]) {
        dispatch!(self, a => kernels::gs_backward(a, dinv, b, x))
    }

    /// Forward triangular solve (the matrix must be lower triangular).
    pub fn sptrsv_forward<P: Scalar>(&self, b: &[P], x: &mut [P]) {
        dispatch!(self, a => kernels::sptrsv_forward(a, b, x))
    }

    /// Backward triangular solve (the matrix must be upper triangular).
    pub fn sptrsv_backward<P: Scalar>(&self, b: &[P], x: &mut [P]) {
        dispatch!(self, a => kernels::sptrsv_backward(a, b, x))
    }
}
