//! Coarse-grid direct solver.
//!
//! The V-cycle bottoms out in a dense LU factorization of the coarsest
//! operator, computed once during setup in `f64` (coarse grids are tiny —
//! `min_coarse_cells` bounded — so the O(n³) factorization and O(n²)
//! solves are negligible; guideline 3 is precisely that coarse levels
//! don't matter for time).

use fp16mg_sgdia::{Csr, SgDia};

/// Dense LU factorization with partial pivoting.
#[derive(Clone, Debug)]
pub struct DenseLu {
    n: usize,
    /// Packed L\U factors, row-major.
    lu: Vec<f64>,
    /// Row permutation.
    piv: Vec<usize>,
}

impl DenseLu {
    /// Maximum unknown count accepted (guards against accidentally huge
    /// coarse grids).
    pub const MAX_UNKNOWNS: usize = 8192;

    /// Factors the structured matrix.
    ///
    /// # Errors
    /// Returns the pivot column on singularity.
    ///
    /// # Panics
    /// Panics if the matrix exceeds [`DenseLu::MAX_UNKNOWNS`].
    pub fn factor(a: &SgDia<f64>) -> Result<Self, usize> {
        let n = a.rows();
        assert!(n <= Self::MAX_UNKNOWNS, "coarse grid too large for dense LU ({n})");
        let csr = Csr::<f64>::from_sgdia(a);
        let mut lu = vec![0.0f64; n * n];
        for row in 0..n {
            let lo = csr.row_ptr()[row] as usize;
            let hi = csr.row_ptr()[row + 1] as usize;
            for e in lo..hi {
                lu[row * n + csr.col_idx()[e] as usize] = csr.values()[e];
            }
        }
        let mut piv: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivot.
            let mut p = col;
            for row in col + 1..n {
                if lu[row * n + col].abs() > lu[p * n + col].abs() {
                    p = row;
                }
            }
            let pv = lu[p * n + col];
            if pv == 0.0 || !pv.is_finite() {
                return Err(col);
            }
            if p != col {
                piv.swap(p, col);
                for j in 0..n {
                    lu.swap(p * n + j, col * n + j);
                }
            }
            let inv = 1.0 / lu[col * n + col];
            for row in col + 1..n {
                let f = lu[row * n + col] * inv;
                lu[row * n + col] = f;
                if f == 0.0 {
                    continue;
                }
                for j in col + 1..n {
                    lu[row * n + j] -= f * lu[col * n + j];
                }
            }
        }
        Ok(DenseLu { n, lu, piv })
    }

    /// Number of unknowns.
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` in place: `x` holds `b` on entry, the solution on
    /// exit (permutation applied internally).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn solve(&self, x: &mut [f64], scratch: &mut [f64]) {
        let n = self.n;
        assert_eq!(x.len(), n, "x length");
        assert_eq!(scratch.len(), n, "scratch length");
        // Apply permutation: scratch = P b.
        for (row, &p) in self.piv.iter().enumerate() {
            scratch[row] = x[p];
        }
        // Forward substitution (unit lower).
        for row in 1..n {
            let mut acc = scratch[row];
            for j in 0..row {
                acc -= self.lu[row * n + j] * scratch[j];
            }
            scratch[row] = acc;
        }
        // Backward substitution.
        for row in (0..n).rev() {
            let mut acc = scratch[row];
            for j in row + 1..n {
                acc -= self.lu[row * n + j] * x[j];
            }
            x[row] = acc / self.lu[row * n + row];
        }
    }
}
