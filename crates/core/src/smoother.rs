//! Coarse-grid direct solver.
//!
//! The V-cycle bottoms out in a dense LU factorization of the coarsest
//! operator, computed once during setup in `f64` (coarse grids are tiny —
//! `min_coarse_cells` bounded — so the O(n³) factorization and O(n²)
//! solves are negligible; guideline 3 is precisely that coarse levels
//! don't matter for time).

use fp16mg_sgdia::{Csr, SgDia};

/// Why a dense LU factorization failed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FactorError {
    /// The pivot in this column was exactly zero: the matrix is
    /// (numerically) singular.
    ZeroPivot {
        /// Column whose pivot vanished.
        column: usize,
    },
    /// The pivot in this column was ±∞ or NaN — the input matrix carried
    /// non-finite values into the factorization.
    NonFinitePivot {
        /// Column whose pivot is non-finite.
        column: usize,
        /// The offending value.
        value: f64,
    },
}

impl FactorError {
    /// The column whose pivot failed.
    pub fn column(&self) -> usize {
        match self {
            FactorError::ZeroPivot { column } => *column,
            FactorError::NonFinitePivot { column, .. } => *column,
        }
    }
}

impl core::fmt::Display for FactorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FactorError::ZeroPivot { column } => {
                write!(f, "zero pivot in column {column} during dense LU")
            }
            FactorError::NonFinitePivot { column, value } => {
                write!(f, "non-finite pivot {value} in column {column} during dense LU")
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// Dense LU factorization with partial pivoting.
#[derive(Clone, Debug)]
pub struct DenseLu {
    n: usize,
    /// Packed L\U factors, row-major.
    lu: Vec<f64>,
    /// Row permutation.
    piv: Vec<usize>,
}

impl DenseLu {
    /// Maximum unknown count accepted (guards against accidentally huge
    /// coarse grids).
    pub const MAX_UNKNOWNS: usize = 8192;

    /// Factors the structured matrix.
    ///
    /// # Errors
    /// [`FactorError`] identifying the failed pivot column, and whether it
    /// vanished or was non-finite.
    ///
    /// # Panics
    /// Panics if the matrix exceeds [`DenseLu::MAX_UNKNOWNS`].
    pub fn factor(a: &SgDia<f64>) -> Result<Self, FactorError> {
        let n = a.rows();
        assert!(n <= Self::MAX_UNKNOWNS, "coarse grid too large for dense LU ({n})");
        let csr = Csr::<f64>::from_sgdia(a);
        let mut lu = vec![0.0f64; n * n];
        for row in 0..n {
            let lo = csr.row_ptr()[row] as usize;
            let hi = csr.row_ptr()[row + 1] as usize;
            for e in lo..hi {
                lu[row * n + csr.col_idx()[e] as usize] = csr.values()[e];
            }
        }
        let mut piv: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivot.
            let mut p = col;
            for row in col + 1..n {
                if lu[row * n + col].abs() > lu[p * n + col].abs() {
                    p = row;
                }
            }
            let pv = lu[p * n + col];
            if pv == 0.0 {
                return Err(FactorError::ZeroPivot { column: col });
            }
            if !pv.is_finite() {
                return Err(FactorError::NonFinitePivot { column: col, value: pv });
            }
            if p != col {
                piv.swap(p, col);
                for j in 0..n {
                    lu.swap(p * n + j, col * n + j);
                }
            }
            let inv = 1.0 / lu[col * n + col];
            for row in col + 1..n {
                let f = lu[row * n + col] * inv;
                lu[row * n + col] = f;
                if f == 0.0 {
                    continue;
                }
                for j in col + 1..n {
                    lu[row * n + j] -= f * lu[col * n + j];
                }
            }
        }
        Ok(DenseLu { n, lu, piv })
    }

    /// Number of unknowns.
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` in place: `x` holds `b` on entry, the solution on
    /// exit (permutation applied internally).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn solve(&self, x: &mut [f64], scratch: &mut [f64]) {
        let n = self.n;
        assert_eq!(x.len(), n, "x length");
        assert_eq!(scratch.len(), n, "scratch length");
        // Apply permutation: scratch = P b.
        for (row, &p) in self.piv.iter().enumerate() {
            scratch[row] = x[p];
        }
        // Forward substitution (unit lower).
        for row in 1..n {
            let mut acc = scratch[row];
            let (head, _) = scratch.split_at(row);
            for (&l, &s) in self.lu[row * n..row * n + row].iter().zip(head) {
                acc -= l * s;
            }
            scratch[row] = acc;
        }
        // Backward substitution.
        for row in (0..n).rev() {
            let mut acc = scratch[row];
            for (&l, &sol) in self.lu[row * n + row + 1..(row + 1) * n].iter().zip(&x[row + 1..]) {
                acc -= l * sol;
            }
            x[row] = acc / self.lu[row * n + row];
        }
    }
}
