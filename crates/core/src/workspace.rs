//! Preallocated per-level V-cycle workspace arena.
//!
//! Every buffer the solve hot loop touches — the per-level iterate,
//! right-hand side, residual, and the five smoother/rescale scratch
//! vectors, plus the finest-level boundary pair used to convert between
//! the Krylov scalar and the hierarchy precision — is carved out of one
//! contiguous allocation at setup time. After `Mg::setup` returns, a
//! steady-state V-cycle (and the CG iteration wrapped around it)
//! performs **zero** heap allocations; the counting-allocator gate in
//! `crates/problems/tests/zero_alloc.rs` enforces this.
//!
//! The arena is laid out level-major — all eight buffers of level 0,
//! then all eight of level 1, … — so a future tiled smoother can hand
//! each tile a disjoint sub-span of a level's region without
//! reallocating (ROADMAP item 1). Sizing is fully checked: hostile
//! grid dimensions surface as [`SetupError::AllocTooLarge`], never as a
//! capacity-overflow panic.

use crate::hierarchy::SetupError;
use fp16mg_fp::Scalar;
use fp16mg_grid::Grid3;

/// Buffers carved per level: `u`, `f`, `r`, `t1`..`t5`.
pub(crate) const BUFS_PER_LEVEL: usize = 8;

/// Hard ceiling on a single workspace arena. Anything larger than this
/// is a hostile or nonsensical request, not a real problem; refusing it
/// with a typed error keeps the setup path abort-free.
pub const MAX_ARENA_BYTES: u64 = 1 << 40;

/// The eight per-level solve buffers, borrowed disjointly from the arena.
///
/// `u` is the iterate, `f` the level right-hand side, `r` the residual;
/// `t1`..`t5` are smoother/rescale scratch (scaled iterate, scaled rhs,
/// and up to three sweep-internal vectors for ILU/Chebyshev).
pub(crate) struct LevelBufs<'a, Pr: Scalar> {
    pub u: &'a mut [Pr],
    pub f: &'a mut [Pr],
    pub r: &'a mut [Pr],
    pub t1: &'a mut [Pr],
    pub t2: &'a mut [Pr],
    pub t3: &'a mut [Pr],
    pub t4: &'a mut [Pr],
    pub t5: &'a mut [Pr],
}

/// One contiguous arena holding every V-cycle temporary, owned by the
/// hierarchy and carved once at setup.
pub(crate) struct Workspace<Pr: Scalar> {
    buf: Vec<Pr>,
    /// Element offset of each level's region within `buf`.
    offsets: Vec<usize>,
    /// Unknown count of each level.
    sizes: Vec<usize>,
    /// Boundary pair for `Preconditioner::apply`: the residual and
    /// correction in hierarchy precision. Owned separately so the apply
    /// path can `mem::take` them (allocation-free) while the rest of the
    /// arena is mutably borrowed through `&mut self`.
    rp: Vec<Pr>,
    ep: Vec<Pr>,
    bytes: usize,
}

/// Checked unknown count for a grid: `nx·ny·nz·components` with every
/// product checked, so hostile dimensions fail typed instead of wrapping
/// in release builds.
pub(crate) fn checked_unknowns(g: &Grid3) -> Result<usize, SetupError> {
    g.nx.checked_mul(g.ny)
        .and_then(|v| v.checked_mul(g.nz))
        .and_then(|v| v.checked_mul(g.components))
        .ok_or(SetupError::AllocTooLarge {
            what: "grid unknowns",
            bytes: u64::MAX,
            limit: MAX_ARENA_BYTES,
        })
}

fn too_large(what: &'static str) -> SetupError {
    SetupError::AllocTooLarge { what, bytes: u64::MAX, limit: MAX_ARENA_BYTES }
}

impl<Pr: Scalar> Workspace<Pr> {
    /// Size and allocate the arena for a hierarchy whose smoothed levels
    /// have `level_unknowns` unknowns each and whose finest operator has
    /// `finest` rows (the boundary pair size). All arithmetic is
    /// checked; an overflow or a request above [`MAX_ARENA_BYTES`]
    /// returns [`SetupError::AllocTooLarge`].
    pub fn for_levels(level_unknowns: &[usize], finest: usize) -> Result<Self, SetupError> {
        let mut offsets = Vec::with_capacity(level_unknowns.len());
        let mut total = 0usize;
        for &n in level_unknowns {
            offsets.push(total);
            let region =
                n.checked_mul(BUFS_PER_LEVEL).ok_or_else(|| too_large("workspace level region"))?;
            total = total.checked_add(region).ok_or_else(|| too_large("workspace arena"))?;
        }
        let boundary = finest.checked_mul(2).ok_or_else(|| too_large("workspace boundary pair"))?;
        let elems = total.checked_add(boundary).ok_or_else(|| too_large("workspace arena"))?;
        let bytes = (elems as u64)
            .checked_mul(core::mem::size_of::<Pr>() as u64)
            .ok_or_else(|| too_large("workspace arena"))?;
        if bytes > MAX_ARENA_BYTES {
            return Err(SetupError::AllocTooLarge {
                what: "workspace arena",
                bytes,
                limit: MAX_ARENA_BYTES,
            });
        }
        Ok(Self {
            buf: vec![Pr::ZERO; total],
            offsets,
            sizes: level_unknowns.to_vec(),
            rp: vec![Pr::ZERO; finest],
            ep: vec![Pr::ZERO; finest],
            bytes: bytes as usize,
        })
    }

    /// Total bytes held by the arena (per-level regions + boundary pair).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Borrow the eight buffers of level `i`.
    pub fn level(&mut self, i: usize) -> LevelBufs<'_, Pr> {
        let (off, n) = (self.offsets[i], self.sizes[i]);
        carve(&mut self.buf[off..off + BUFS_PER_LEVEL * n], n)
    }

    /// Borrow the buffers of two distinct levels `i < j` simultaneously
    /// (fine/coarse pair for restrict/prolong).
    pub fn level_pair(&mut self, i: usize, j: usize) -> (LevelBufs<'_, Pr>, LevelBufs<'_, Pr>) {
        assert!(i < j, "level_pair requires i < j");
        let (ni, nj) = (self.sizes[i], self.sizes[j]);
        let (offi, offj) = (self.offsets[i], self.offsets[j]);
        let (lo, hi) = self.buf.split_at_mut(offj);
        let fine = carve(&mut lo[offi..offi + BUFS_PER_LEVEL * ni], ni);
        let coarse = carve(&mut hi[..BUFS_PER_LEVEL * nj], nj);
        (fine, coarse)
    }

    /// Take the boundary pair out of the arena (no allocation — the Vecs
    /// move). The caller must hand them back via
    /// [`Workspace::restore_boundary`] before the next apply.
    pub fn take_boundary(&mut self) -> (Vec<Pr>, Vec<Pr>) {
        (core::mem::take(&mut self.rp), core::mem::take(&mut self.ep))
    }

    /// Return the boundary pair taken by [`Workspace::take_boundary`].
    pub fn restore_boundary(&mut self, rp: Vec<Pr>, ep: Vec<Pr>) {
        self.rp = rp;
        self.ep = ep;
    }
}

fn carve<Pr: Scalar>(region: &mut [Pr], n: usize) -> LevelBufs<'_, Pr> {
    let (u, rest) = region.split_at_mut(n);
    let (f, rest) = rest.split_at_mut(n);
    let (r, rest) = rest.split_at_mut(n);
    let (t1, rest) = rest.split_at_mut(n);
    let (t2, rest) = rest.split_at_mut(n);
    let (t3, rest) = rest.split_at_mut(n);
    let (t4, t5) = rest.split_at_mut(n);
    LevelBufs { u, f, r, t1, t2, t3, t4, t5 }
}
