//! Multigrid tests: Galerkin coarsening validated against an explicit
//! dense triple product, transfer-operator adjointness, and end-to-end
//! convergence of every precision/scaling configuration.

use fp16mg_fp::Precision;
use fp16mg_grid::Grid3;
use fp16mg_krylov::{cg, richardson, Preconditioner, SolveOptions, StopReason};
use fp16mg_sgdia::kernels::Par;
use fp16mg_sgdia::{Csr, Layout, SgDia};
use fp16mg_stencil::Pattern;

use crate::{
    galerkin_rap, prolong_add, restrict, DenseLu, MatOp, Mg, MgConfig, ScaleStrategy, SmootherKind,
    StoragePolicy,
};

/// 7-point (or 27-point) Laplacian with Dirichlet boundary: off-diagonals
/// -1, diagonal = #neighbors + shift (strict dominance keeps it SPD and
/// the coarse LU nonsingular).
fn laplacian(grid: Grid3, pattern: Pattern, scale: f64) -> SgDia<f64> {
    let taps: Vec<_> = pattern.taps().to_vec();
    SgDia::from_fn(grid, pattern.clone(), Layout::Soa, |_, i, j, k, t| {
        if taps[t].is_diagonal() {
            let mut nb = 0.0;
            for tap in &taps {
                if !tap.is_diagonal() && grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                    nb += 1.0;
                }
            }
            (nb + 0.05) * scale
        } else {
            -scale
        }
    })
}

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i as f64 * 0.7).sin() + 1.5) / 2.0).collect()
}

#[test]
fn rap_matches_explicit_triple_product() {
    let fine = Grid3::new(5, 4, 3);
    let coarse = fine.coarsen();
    let a = laplacian(fine, Pattern::p7(), 1.0);
    let ac = galerkin_rap(&a);
    assert_eq!(*ac.grid(), coarse);
    assert_eq!(ac.pattern().name(), "3d27");

    // Build P explicitly by prolongating coarse unit vectors.
    let nf = fine.unknowns();
    let nc = coarse.unknowns();
    let mut p = vec![0.0f64; nf * nc];
    for c in 0..nc {
        let mut uc = vec![0.0f64; nc];
        uc[c] = 1.0;
        let mut uf = vec![0.0f64; nf];
        prolong_add(&fine, &coarse, &uc, &mut uf);
        for f in 0..nf {
            p[f * nc + c] = uf[f];
        }
    }
    // Dense Pᵀ A P.
    let csr = Csr::<f64>::from_sgdia(&a);
    let mut arow = vec![0.0f64; nf];
    let mut ap = vec![0.0f64; nf * nc]; // A * P
    for f in 0..nf {
        csr.dense_row(f, &mut arow);
        for g in 0..nf {
            let v = arow[g];
            if v == 0.0 {
                continue;
            }
            for c in 0..nc {
                ap[f * nc + c] += v * p[g * nc + c];
            }
        }
    }
    let mut rap = vec![0.0f64; nc * nc];
    for f in 0..nf {
        for rr in 0..nc {
            let w = p[f * nc + rr];
            if w == 0.0 {
                continue;
            }
            for c in 0..nc {
                rap[rr * nc + c] += w * ap[f * nc + c];
            }
        }
    }
    // Compare against the structured RAP via its CSR.
    let ac_csr = Csr::<f64>::from_sgdia(&ac);
    let mut acrow = vec![0.0f64; nc];
    for rr in 0..nc {
        ac_csr.dense_row(rr, &mut acrow);
        for c in 0..nc {
            let diff = (acrow[c] - rap[rr * nc + c]).abs();
            assert!(
                diff < 1e-12,
                "RAP mismatch at ({rr},{c}): {} vs {}",
                acrow[c],
                rap[rr * nc + c]
            );
        }
    }
}

#[test]
fn rap_preserves_symmetry() {
    let a = laplacian(Grid3::new(6, 5, 4), Pattern::p7(), 3.0);
    let ac = galerkin_rap(&a);
    let csr = Csr::<f64>::from_sgdia(&ac);
    let n = csr.rows();
    let mut row_i = vec![0.0f64; n];
    let mut row_j = vec![0.0f64; n];
    for i in 0..n {
        csr.dense_row(i, &mut row_i);
        for (j, &v) in row_i.iter().enumerate().skip(i + 1) {
            if v != 0.0 {
                csr.dense_row(j, &mut row_j);
                assert!((v - row_j[i]).abs() < 1e-13, "asymmetric at ({i},{j})");
            }
        }
    }
}

#[test]
fn transfer_operators_are_adjoint() {
    let fine = Grid3::new(7, 6, 5);
    let coarse = fine.coarsen();
    let uc: Vec<f64> = (0..coarse.unknowns()).map(|i| (i as f64 * 0.31).cos()).collect();
    let vf: Vec<f64> = (0..fine.unknowns()).map(|i| (i as f64 * 0.17).sin()).collect();
    // <P uc, vf>
    let mut puc = vec![0.0f64; fine.unknowns()];
    prolong_add(&fine, &coarse, &uc, &mut puc);
    let lhs: f64 = puc.iter().zip(&vf).map(|(&a, &b)| a * b).sum();
    // <uc, Pᵀ vf>
    let mut rv = vec![0.0f64; coarse.unknowns()];
    restrict(&fine, &coarse, &vf, &mut rv);
    let rhs_: f64 = uc.iter().zip(&rv).map(|(&a, &b)| a * b).sum();
    assert!((lhs - rhs_).abs() < 1e-10 * lhs.abs().max(1.0));
}

#[test]
fn prolongation_partition_of_unity_interior() {
    // A constant coarse vector prolongates to the constant on fine cells
    // whose parents all exist (interior; odd-coordinate boundary cells may
    // lose a parent).
    // Weight folding at odd boundary coordinates keeps the row sums at
    // exactly 1 on every cell, so constants prolongate to constants.
    for fine in [Grid3::new(8, 8, 8), Grid3::new(9, 7, 5)] {
        let coarse = fine.coarsen();
        let uc = vec![1.0f64; coarse.unknowns()];
        let mut uf = vec![0.0f64; fine.unknowns()];
        prolong_add(&fine, &coarse, &uc, &mut uf);
        for (cell, i, j, k) in fine.iter_cells() {
            assert!((uf[cell] - 1.0).abs() < 1e-12, "cell ({i},{j},{k}) = {}", uf[cell]);
        }
    }
}

#[test]
fn vector_transfers_act_componentwise() {
    let fine = Grid3::with_components(6, 4, 4, 3);
    let coarse = fine.coarsen();
    // Component c of the coarse vector = c everywhere; prolongation must
    // keep components separated.
    let mut uc = vec![0.0f64; coarse.unknowns()];
    for cell in 0..coarse.cells() {
        for c in 0..3 {
            uc[cell * 3 + c] = c as f64;
        }
    }
    let mut uf = vec![0.0f64; fine.unknowns()];
    prolong_add(&fine, &coarse, &uc, &mut uf);
    for cell in 0..fine.cells() {
        // Weights sum to at most 1; whatever the sum w, component c gets
        // w * c, so uf[1]/1 == uf[2]/2 wherever nonzero.
        let u1 = uf[cell * 3 + 1];
        let u2 = uf[cell * 3 + 2];
        assert!((u2 - 2.0 * u1).abs() < 1e-12);
        assert_eq!(uf[cell * 3], 0.0);
    }
}

#[test]
fn dense_lu_solves() {
    let a = laplacian(Grid3::new(4, 3, 3), Pattern::p7(), 2.0);
    let lu = DenseLu::factor(&a).unwrap();
    let n = a.rows();
    let b = rhs(n);
    let mut x = b.clone();
    let mut s = vec![0.0f64; n];
    lu.solve(&mut x, &mut s);
    // Check A x = b.
    let mut ax = vec![0.0f64; n];
    fp16mg_sgdia::kernels::spmv(&a, &x, &mut ax, Par::Seq);
    for (u, v) in ax.iter().zip(&b) {
        assert!((u - v).abs() < 1e-10);
    }
}

/// Runs MG-preconditioned Richardson as a plain solver on a Laplacian.
fn mg_solver_iters(config: &MgConfig, pattern: Pattern, scale: f64) -> (StopReason, usize) {
    let grid = Grid3::cube(16);
    let a = laplacian(grid, pattern, scale);
    let mut mg = Mg::<f32>::setup(&a, config).expect("setup");
    let op = MatOp::new(&a, Par::Seq);
    let b = rhs(a.rows());
    let mut x = vec![0.0f64; a.rows()];
    let opts = SolveOptions { tol: 1e-8, max_iters: 100, ..Default::default() };
    let res = richardson(&op, &mut mg, &b, &mut x, &opts);
    (res.reason, res.iters)
}

#[test]
fn mg_richardson_converges_fast_d32() {
    let (reason, iters) = mg_solver_iters(&MgConfig::d32(), Pattern::p7(), 1.0);
    assert_eq!(reason, StopReason::Converged);
    assert!(iters <= 15, "V(1,1) on Poisson should converge in ~10 iters, got {iters}");
}

#[test]
fn mg_richardson_converges_d16_in_range() {
    let (reason, iters) = mg_solver_iters(&MgConfig::d16(), Pattern::p7(), 1.0);
    assert_eq!(reason, StopReason::Converged);
    let (_, iters32) = mg_solver_iters(&MgConfig::d32(), Pattern::p7(), 1.0);
    assert!(
        iters <= iters32 + 4,
        "FP16 storage should barely affect convergence in range: {iters} vs {iters32}"
    );
}

#[test]
fn mg_d16_none_breaks_down_out_of_range() {
    // laplace27*1e8 analog: coefficients far beyond FP16_MAX. Without
    // scaling the truncation overflows and the solve must break down with
    // NaN (§3.4), not silently "converge". Runtime recovery is disabled
    // here to observe the paper's original fail-fast behavior; the
    // self-healing counterpart is the test below.
    let cfg = MgConfig {
        scale: ScaleStrategy::None,
        recovery: crate::RecoveryPolicy::disabled(),
        ..MgConfig::d16()
    };
    let (reason, _) = mg_solver_iters(&cfg, Pattern::p7(), 1.0e8);
    assert_eq!(reason, StopReason::Breakdown);
}

#[test]
fn mg_d16_none_out_of_range_self_heals_with_recovery_on() {
    // Same overflowed configuration, recovery left on (the default): the
    // hierarchy detects the non-finite V-cycle output, promotes the
    // overflowed FP16 levels to FP32, and the solve converges anyway.
    let cfg = MgConfig { scale: ScaleStrategy::None, ..MgConfig::d16() };
    let grid = Grid3::cube(16);
    let a = laplacian(grid, Pattern::p7(), 1.0e8);
    let mut mg = Mg::<f32>::setup(&a, &cfg).unwrap();
    let op = MatOp::new(&a, Par::Seq);
    let b = rhs(a.rows());
    let mut x = vec![0.0f64; a.rows()];
    let res = richardson(&op, &mut mg, &b, &mut x, &SolveOptions::default());
    assert!(res.converged(), "{res:?}");
    assert!(!mg.promotions().is_empty(), "healing must have promoted a level");
    assert!(mg.promotions().iter().all(|e| e.reason == crate::PromotionReason::NonFiniteOutput));
}

#[test]
fn mg_d16_setup_then_scale_rescues_out_of_range() {
    let cfg = MgConfig { scale: ScaleStrategy::SetupThenScale, ..MgConfig::d16() };
    let (reason, iters) = mg_solver_iters(&cfg, Pattern::p7(), 1.0e8);
    assert_eq!(reason, StopReason::Converged);
    // And convergence should match the in-range FP16 run (scaling is
    // exact up to rounding).
    let (_, iters_in) = mg_solver_iters(&MgConfig::d16(), Pattern::p7(), 1.0);
    assert!(iters <= iters_in + 3, "{iters} vs {iters_in}");
}

#[test]
fn mg_d16_scale_then_setup_also_converges_on_benign_problem() {
    // On the isotropic constant-coefficient Laplacian both strategies
    // work (Fig. 6b: curves coincide); the difference appears on
    // real-world numerics, exercised in the problems crate.
    let cfg = MgConfig { scale: ScaleStrategy::ScaleThenSetup, ..MgConfig::d16() };
    let (reason, _) = mg_solver_iters(&cfg, Pattern::p7(), 1.0e8);
    assert_eq!(reason, StopReason::Converged);
}

#[test]
fn mg_cg_beats_unpreconditioned() {
    let grid = Grid3::cube(16);
    let a = laplacian(grid, Pattern::p7(), 1.0);
    let op = MatOp::new(&a, Par::Seq);
    let b = rhs(a.rows());
    let opts = SolveOptions { tol: 1e-9, max_iters: 400, ..Default::default() };

    let mut x0 = vec![0.0f64; a.rows()];
    let plain = cg(&op, &mut fp16mg_krylov::IdentityPrecond, &b, &mut x0, &opts);

    let mut mg = Mg::<f32>::setup(&a, &MgConfig::d16()).unwrap();
    let mut x1 = vec![0.0f64; a.rows()];
    let pre = cg(&op, &mut mg, &b, &mut x1, &opts);

    assert!(plain.converged() && pre.converged());
    assert!(pre.iters * 3 < plain.iters, "MG-CG {} vs plain CG {}", pre.iters, plain.iters);
}

#[test]
fn mg_jacobi_smoother_converges() {
    let cfg = MgConfig { smoother: SmootherKind::Jacobi { weight: 0.85 }, ..MgConfig::d16() };
    let (reason, iters) = mg_solver_iters(&cfg, Pattern::p7(), 1.0);
    assert_eq!(reason, StopReason::Converged);
    assert!(iters <= 40);
}

#[test]
fn mg_symgs_smoother_converges() {
    let cfg = MgConfig { smoother: SmootherKind::SymGs, ..MgConfig::d16() };
    let (reason, iters) = mg_solver_iters(&cfg, Pattern::p7(), 1.0);
    assert_eq!(reason, StopReason::Converged);
    assert!(iters <= 12);
}

#[test]
fn mg_p27_pattern_converges() {
    let (reason, iters) = mg_solver_iters(&MgConfig::d16(), Pattern::p27(), 1.0);
    assert_eq!(reason, StopReason::Converged);
    assert!(iters <= 20);
}

#[test]
fn mg_vector_pde_converges() {
    // 2-component coupled Laplacian: weak inter-component coupling at the
    // diagonal block.
    let grid = Grid3::with_components(12, 12, 12, 2);
    let pat = Pattern::p7().with_components(2);
    let taps: Vec<_> = pat.taps().to_vec();
    let a = SgDia::from_fn(grid, pat, Layout::Aos, |_, i, j, k, t| {
        let tap = taps[t];
        if tap.is_diagonal() {
            let mut nb = 0.0;
            for tp in &taps {
                if tp.cout == tap.cout
                    && !tp.is_center()
                    && grid.contains_offset(i, j, k, tp.dx, tp.dy, tp.dz)
                {
                    nb += 1.0;
                }
            }
            nb + 0.4
        } else if tap.is_center() {
            0.15 // inter-component coupling
        } else if tap.cin == tap.cout {
            -1.0
        } else {
            0.0
        }
    });
    let mut mg = Mg::<f32>::setup(&a, &MgConfig::d16()).unwrap();
    let op = MatOp::new(&a, Par::Seq);
    let b = rhs(a.rows());
    let mut x = vec![0.0f64; a.rows()];
    let opts = SolveOptions { tol: 1e-8, max_iters: 60, ..Default::default() };
    let res = cg(&op, &mut mg, &b, &mut x, &opts);
    assert!(res.converged(), "{res:?}");
}

#[test]
fn shift_levid_policy_sets_level_precisions() {
    let grid = Grid3::cube(32);
    let a = laplacian(grid, Pattern::p7(), 1.0);
    let cfg = MgConfig {
        storage: StoragePolicy::Fp16Until { shift_levid: 2, coarse: Precision::F32 },
        ..MgConfig::d16()
    };
    let mg = Mg::<f32>::setup(&a, &cfg).unwrap();
    let info = mg.info();
    assert!(info.levels.len() >= 4, "expected ≥4 levels, got {}", info.levels.len());
    assert_eq!(info.levels[0].precision, Precision::F16);
    assert_eq!(info.levels[1].precision, Precision::F16);
    for l in &info.levels[2..info.levels.len() - 1] {
        assert_eq!(l.precision, Precision::F32);
    }
    // shift_levid still converges.
    let op = MatOp::new(&a, Par::Seq);
    let b = rhs(a.rows());
    let mut x = vec![0.0f64; a.rows()];
    let mut mg = mg;
    let res = richardson(&op, &mut mg, &b, &mut x, &SolveOptions::default());
    assert!(res.converged());
}

#[test]
fn complexities_are_low_for_full_coarsening() {
    // Guideline 3's premise: C_G ≲ 8/7, C_O modest.
    let a = laplacian(Grid3::cube(32), Pattern::p7(), 1.0);
    let mg = Mg::<f32>::setup(&a, &MgConfig::d32()).unwrap();
    let info = mg.info();
    assert!(info.grid_complexity < 1.25, "C_G = {}", info.grid_complexity);
    assert!(info.operator_complexity < 6.0, "C_O = {}", info.operator_complexity);
    assert!(info.grid_complexity > 1.0);
}

#[test]
fn fp16_halves_matrix_bytes_vs_fp32() {
    let a = laplacian(Grid3::cube(16), Pattern::p7(), 1.0);
    let m16 = Mg::<f32>::setup(&a, &MgConfig::d16()).unwrap();
    let m32 = Mg::<f32>::setup(&a, &MgConfig::d32()).unwrap();
    assert_eq!(m32.info().matrix_bytes, 2 * m16.info().matrix_bytes);
}

#[test]
fn setup_reports_scaling_metadata() {
    let a = laplacian(Grid3::cube(12), Pattern::p7(), 1.0e8);
    let mg = Mg::<f32>::setup(&a, &MgConfig::d16()).unwrap();
    let info = mg.info();
    // Finest level must be scaled (values ≫ FP16_MAX) and finite after
    // truncation (Theorem 4.1).
    assert!(info.levels[0].scaled);
    assert!(info.levels[0].finite);
    assert!(info.levels[0].g.unwrap() > 0.0);
    // Same matrix without scaling: truncation overflows.
    let cfg = MgConfig { scale: ScaleStrategy::None, ..MgConfig::d16() };
    let mg_none = Mg::<f32>::setup(&a, &cfg).unwrap();
    assert!(!mg_none.info().levels[0].finite);
}

#[test]
fn preconditioner_trait_round_trips_precision() {
    // Apply through the K=f64 trait; the result must equal apply_pr
    // modulo the f64→f32→f64 boundary conversions.
    let a = laplacian(Grid3::cube(8), Pattern::p7(), 1.0);
    let mut mg = Mg::<f32>::setup(&a, &MgConfig::d32()).unwrap();
    let r: Vec<f64> = rhs(a.rows());
    let mut z = vec![0.0f64; a.rows()];
    Preconditioner::<f64>::apply(&mut mg, &r, &mut z);
    let rp: Vec<f32> = r.iter().map(|&v| v as f32).collect();
    let mut zp = vec![0.0f32; a.rows()];
    mg.apply_pr(&rp, &mut zp);
    for (a, b) in z.iter().zip(&zp) {
        assert!((*a - *b as f64).abs() < 1e-6 * (1.0 + a.abs()));
    }
}

#[test]
fn single_level_hierarchy_is_direct_solve() {
    let a = laplacian(Grid3::new(4, 3, 2), Pattern::p7(), 1.0);
    let cfg = MgConfig { max_levels: 1, ..MgConfig::d32() };
    let mut mg = Mg::<f32>::setup(&a, &cfg).unwrap();
    assert_eq!(mg.num_levels(), 1);
    let b = rhs(a.rows());
    let op = MatOp::new(&a, Par::Seq);
    let mut x = vec![0.0f64; a.rows()];
    let res = richardson(&op, &mut mg, &b, &mut x, &SolveOptions::default());
    // A direct solve converges in ~1 iteration (f32 truncation limits it).
    assert!(res.converged());
    assert!(res.iters <= 3, "direct solve took {} iters", res.iters);
}

#[test]
fn nonpositive_diagonal_falls_back_to_fp32_storage() {
    // Theorem 4.1 needs positive diagonals; when a level violates that,
    // setup-then-scale falls back to unscaled FP32 storage for that level
    // instead of failing (the coarse-level analog of shift_levid).
    let grid = Grid3::cube(8);
    let a = SgDia::<f64>::from_fn(grid, Pattern::p7(), Layout::Soa, |_, _, _, _, t| {
        if Pattern::p7().taps()[t].is_diagonal() {
            -1.0e8 // negative diagonal, out of FP16 range -> scaling needed
        } else {
            1.0
        }
    });
    let mg = Mg::<f32>::setup(&a, &MgConfig::d16()).expect("fallback setup");
    let l0 = &mg.info().levels[0];
    assert_eq!(l0.precision, Precision::F32);
    assert!(!l0.scaled);
    assert!(l0.finite);
}

#[test]
fn scale_then_setup_rejects_nonpositive_diagonal() {
    // The inferior strategy scales the finest matrix up front and has no
    // fallback: the M-matrix prerequisite is a hard error there.
    let grid = Grid3::cube(8);
    let a = SgDia::<f64>::from_fn(grid, Pattern::p7(), Layout::Soa, |_, _, _, _, t| {
        if Pattern::p7().taps()[t].is_diagonal() {
            -1.0e8
        } else {
            1.0
        }
    });
    let cfg = MgConfig { scale: ScaleStrategy::ScaleThenSetup, ..MgConfig::d16() };
    let err = match Mg::<f32>::setup(&a, &cfg) {
        Err(e) => e,
        Ok(_) => panic!("expected setup to fail"),
    };
    assert!(matches!(err, crate::SetupError::NonPositiveDiagonal { .. }));
}

#[test]
fn mg_ilu0_smoother_converges() {
    // ILU(0)-smoothed V-cycle: nonsymmetric preconditioner, so test with
    // Richardson (the paper's Algorithm 2) rather than CG.
    let cfg = MgConfig { smoother: SmootherKind::Ilu0, ..MgConfig::d16() };
    let (reason, iters) = mg_solver_iters(&cfg, Pattern::p7(), 1.0);
    assert_eq!(reason, StopReason::Converged);
    assert!(iters <= 15, "ILU(0) V-cycle took {iters} iters");
    // Scaled out-of-range problem with ILU factors truncated to FP16.
    let (reason, _) = mg_solver_iters(&cfg, Pattern::p7(), 1.0e8);
    assert_eq!(reason, StopReason::Converged);
}

#[test]
fn mg_ilu0_falls_back_to_gs_on_vector_pde() {
    let grid = Grid3::with_components(10, 10, 10, 2);
    let pat = Pattern::p7().with_components(2);
    let taps: Vec<_> = pat.taps().to_vec();
    let a = SgDia::from_fn(grid, pat, Layout::Soa, |_, i, j, k, t| {
        let tap = taps[t];
        if tap.is_diagonal() {
            let mut nb = 0.0;
            for tp in &taps {
                if tp.cout == tap.cout
                    && !tp.is_center()
                    && grid.contains_offset(i, j, k, tp.dx, tp.dy, tp.dz)
                {
                    nb += 1.0;
                }
            }
            nb + 0.4
        } else if tap.is_center() {
            0.1
        } else if tap.cin == tap.cout {
            -1.0
        } else {
            0.0
        }
    });
    let cfg = MgConfig { smoother: SmootherKind::Ilu0, ..MgConfig::d16() };
    let mut mg = Mg::<f32>::setup(&a, &cfg).unwrap();
    let op = MatOp::new(&a, Par::Seq);
    let b = rhs(a.rows());
    let mut x = vec![0.0f64; a.rows()];
    let res = richardson(&op, &mut mg, &b, &mut x, &SolveOptions::default());
    assert!(res.converged(), "{res:?}");
}

#[test]
fn w_and_f_cycles_converge_at_least_as_fast_as_v() {
    use crate::Cycle;
    let mut iters = Vec::new();
    for cycle in [Cycle::V, Cycle::W, Cycle::F] {
        let cfg = MgConfig { cycle, max_levels: 4, min_coarse_cells: 8, ..MgConfig::d16() };
        let (reason, it) = mg_solver_iters(&cfg, Pattern::p7(), 1.0);
        assert_eq!(reason, StopReason::Converged, "{cycle:?}");
        iters.push(it);
    }
    // More coarse work can only help the per-cycle contraction.
    assert!(iters[1] <= iters[0], "W {} vs V {}", iters[1], iters[0]);
    assert!(iters[2] <= iters[0], "F {} vs V {}", iters[2], iters[0]);
}

#[test]
fn semicoarsened_rap_matches_explicit_triple_product() {
    // Same consistency check as the full-coarsening test, but coarsening
    // only z (strong-direction semicoarsening).
    let fine = Grid3::new(4, 3, 6);
    let a = laplacian(fine, Pattern::p7(), 1.0);
    let ac = crate::galerkin_rap_axes(&a, (false, false, true));
    let coarse = *ac.grid();
    assert_eq!((coarse.nx, coarse.ny, coarse.nz), (4, 3, 3));

    let nf = fine.unknowns();
    let nc = coarse.unknowns();
    let mut p = vec![0.0f64; nf * nc];
    for c in 0..nc {
        let mut uc = vec![0.0f64; nc];
        uc[c] = 1.0;
        let mut uf = vec![0.0f64; nf];
        prolong_add(&fine, &coarse, &uc, &mut uf);
        for f in 0..nf {
            p[f * nc + c] = uf[f];
        }
    }
    let csr = Csr::<f64>::from_sgdia(&a);
    let mut arow = vec![0.0f64; nf];
    let mut ap = vec![0.0f64; nf * nc];
    for f in 0..nf {
        csr.dense_row(f, &mut arow);
        for g in 0..nf {
            let v = arow[g];
            if v == 0.0 {
                continue;
            }
            for c in 0..nc {
                ap[f * nc + c] += v * p[g * nc + c];
            }
        }
    }
    let mut rap = vec![0.0f64; nc * nc];
    for f in 0..nf {
        for rr in 0..nc {
            let w = p[f * nc + rr];
            if w == 0.0 {
                continue;
            }
            for c in 0..nc {
                rap[rr * nc + c] += w * ap[f * nc + c];
            }
        }
    }
    let ac_csr = Csr::<f64>::from_sgdia(&ac);
    let mut acrow = vec![0.0f64; nc];
    for rr in 0..nc {
        ac_csr.dense_row(rr, &mut acrow);
        for c in 0..nc {
            assert!((acrow[c] - rap[rr * nc + c]).abs() < 1e-12, "({rr},{c})");
        }
    }
}

#[test]
fn directional_strength_detects_anisotropy() {
    // z-coupling 50x stronger than x/y.
    let grid = Grid3::cube(8);
    let pat = Pattern::p7();
    let taps: Vec<_> = pat.taps().to_vec();
    let a = SgDia::<f64>::from_fn(grid, pat, Layout::Soa, |_, _, _, _, t| {
        let tap = taps[t];
        if tap.is_diagonal() {
            104.0
        } else if tap.dz != 0 {
            -50.0
        } else {
            -1.0
        }
    });
    let s = crate::directional_strength(&a);
    assert!(s[2] > 40.0 * s[0] && s[2] > 40.0 * s[1], "{s:?}");
}

#[test]
fn semicoarsening_beats_full_coarsening_on_anisotropic_problem() {
    use crate::Coarsening;
    // Strong z-coupling: point GS + full coarsening struggles;
    // semicoarsening in z restores fast convergence.
    let grid = Grid3::cube(16);
    let pat = Pattern::p7();
    let taps: Vec<_> = pat.taps().to_vec();
    let a = SgDia::<f64>::from_fn(grid, pat, Layout::Soa, |_, i, j, k, t| {
        let tap = taps[t];
        if tap.is_diagonal() {
            let mut acc = 0.05;
            for tp in &taps {
                if !tp.is_diagonal() && grid.contains_offset(i, j, k, tp.dx, tp.dy, tp.dz) {
                    acc += if tp.dz != 0 { 100.0 } else { 1.0 };
                }
            }
            acc
        } else if tap.dz != 0 {
            -100.0
        } else {
            -1.0
        }
    });
    let b = rhs(a.rows());
    let op = MatOp::new(&a, Par::Seq);
    let opts = SolveOptions { tol: 1e-8, max_iters: 200, ..Default::default() };
    let mut iters = Vec::new();
    for coarsening in [Coarsening::Full, Coarsening::Semi { threshold: 0.5 }] {
        let cfg = MgConfig { coarsening, ..MgConfig::d16() };
        let mut mg = Mg::<f32>::setup(&a, &cfg).unwrap();
        let mut x = vec![0.0f64; a.rows()];
        let res = cg(&op, &mut mg, &b, &mut x, &opts);
        assert!(res.converged(), "{coarsening:?}: {res:?}");
        iters.push(res.iters);
    }
    assert!(
        iters[1] * 2 <= iters[0],
        "semicoarsening {} should at least halve full coarsening's {}",
        iters[1],
        iters[0]
    );
}

#[test]
fn semicoarsening_on_isotropic_problem_acts_like_full() {
    use crate::Coarsening;
    let cfg = MgConfig { coarsening: Coarsening::Semi { threshold: 0.5 }, ..MgConfig::d16() };
    let (reason, iters) = mg_solver_iters(&cfg, Pattern::p7(), 1.0);
    assert_eq!(reason, StopReason::Converged);
    let (_, full_iters) = mg_solver_iters(&MgConfig::d16(), Pattern::p7(), 1.0);
    assert_eq!(iters, full_iters, "isotropic: semicoarsening must pick all axes");
}

#[test]
fn mg_chebyshev_smoother_converges() {
    let cfg = MgConfig { smoother: SmootherKind::Chebyshev { degree: 3 }, ..MgConfig::d16() };
    let (reason, iters) = mg_solver_iters(&cfg, Pattern::p7(), 1.0);
    assert_eq!(reason, StopReason::Converged);
    assert!(iters <= 35, "Chebyshev(3) V-cycle took {iters}");
    // Out-of-range + scaling path.
    let (reason, _) = mg_solver_iters(&cfg, Pattern::p7(), 1.0e8);
    assert_eq!(reason, StopReason::Converged);
}

#[test]
fn mg_chebyshev_is_cg_safe() {
    // Chebyshev-Jacobi smoothing keeps the V-cycle SPD: CG must converge
    // cleanly.
    let grid = Grid3::cube(16);
    let a = laplacian(grid, Pattern::p27(), 1.0);
    let cfg = MgConfig { smoother: SmootherKind::Chebyshev { degree: 2 }, ..MgConfig::d16() };
    let mut mg = Mg::<f32>::setup(&a, &cfg).unwrap();
    let op = MatOp::new(&a, Par::Seq);
    let b = rhs(a.rows());
    let mut x = vec![0.0f64; a.rows()];
    let res = cg(&op, &mut mg, &b, &mut x, &SolveOptions::default());
    assert!(res.converged(), "{res:?}");
    assert!(res.iters <= 25);
}

// ------------------------------------------------- config validation --

mod validation {
    use super::*;
    use crate::{Coarsening, ConfigError, RecoveryPolicy, SetupError};
    use fp16mg_sgdia::scaling::GChoice;

    fn setup_err(cfg: MgConfig) -> SetupError {
        let a = laplacian(Grid3::cube(8), Pattern::p7(), 1.0);
        match Mg::<f32>::setup(&a, &cfg) {
            Ok(_) => panic!("config must be rejected"),
            Err(e) => e,
        }
    }

    #[test]
    fn rejects_zero_levels() {
        let cfg = MgConfig { max_levels: 0, ..MgConfig::d16() };
        assert_eq!(setup_err(cfg), SetupError::InvalidConfig(ConfigError::NoLevels));
    }

    #[test]
    fn rejects_shift_beyond_levels() {
        let cfg = MgConfig {
            storage: StoragePolicy::Fp16Until { shift_levid: 11, coarse: Precision::F32 },
            max_levels: 10,
            ..MgConfig::default()
        };
        assert_eq!(
            setup_err(cfg),
            SetupError::InvalidConfig(ConfigError::ShiftBeyondLevels {
                shift_levid: 11,
                max_levels: 10
            })
        );
        // usize::MAX is the documented "all FP16" sentinel, not an error.
        let cfg = MgConfig {
            storage: StoragePolicy::Fp16Until { shift_levid: usize::MAX, coarse: Precision::F32 },
            ..MgConfig::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn rejects_no_smoothing() {
        let cfg = MgConfig { nu1: 0, nu2: 0, ..MgConfig::d16() };
        assert_eq!(setup_err(cfg), SetupError::InvalidConfig(ConfigError::NoSmoothing));
    }

    #[test]
    fn rejects_empty_per_level() {
        let cfg = MgConfig { storage: StoragePolicy::PerLevel(vec![]), ..MgConfig::default() };
        assert_eq!(setup_err(cfg), SetupError::InvalidConfig(ConfigError::EmptyPerLevel));
    }

    #[test]
    fn rejects_bad_fixed_g() {
        for g in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let cfg = MgConfig { g_choice: GChoice::Fixed(g), ..MgConfig::d16() };
            match setup_err(cfg) {
                SetupError::InvalidConfig(ConfigError::InvalidG { .. }) => {}
                other => panic!("G = {g}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_bad_jacobi_weight() {
        let cfg = MgConfig { smoother: SmootherKind::Jacobi { weight: -0.5 }, ..MgConfig::d16() };
        match setup_err(cfg) {
            SetupError::InvalidConfig(ConfigError::InvalidSmootherWeight { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_zero_degree_chebyshev() {
        let cfg = MgConfig { smoother: SmootherKind::Chebyshev { degree: 0 }, ..MgConfig::d16() };
        assert_eq!(setup_err(cfg), SetupError::InvalidConfig(ConfigError::InvalidChebyshevDegree));
    }

    #[test]
    fn rejects_bad_semi_threshold() {
        for threshold in [0.0, -1.0, 1.5, f64::NAN] {
            let cfg = MgConfig { coarsening: Coarsening::Semi { threshold }, ..MgConfig::d16() };
            match setup_err(cfg) {
                SetupError::InvalidConfig(ConfigError::InvalidSemiThreshold { .. }) => {}
                other => panic!("threshold = {threshold}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_bad_g_tighten() {
        let cfg = MgConfig {
            recovery: RecoveryPolicy { g_tighten: 0.0, ..Default::default() },
            ..MgConfig::d16()
        };
        match setup_err(cfg) {
            SetupError::InvalidConfig(ConfigError::InvalidGTighten { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn singular_coarse_matrix_is_a_typed_error() {
        // Zero out one row: the (single-level) coarse LU must hit a zero
        // pivot and report it as SetupError::SingularCoarseMatrix instead
        // of panicking.
        let grid = Grid3::cube(4);
        let pat = Pattern::p7();
        let taps: Vec<_> = pat.taps().to_vec();
        let a = SgDia::<f64>::from_fn(grid, pat, Layout::Soa, |_, i, j, k, t| {
            if (i, j, k) == (0, 0, 0) {
                0.0
            } else if taps[t].is_diagonal() {
                6.05
            } else {
                -1.0
            }
        });
        let cfg = MgConfig { max_levels: 1, ..MgConfig::default() };
        match Mg::<f32>::setup(&a, &cfg).map(|_| ()) {
            Err(SetupError::SingularCoarseMatrix { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}

// --------------------------------------------------- runtime recovery --

mod recovery {
    use super::*;
    use crate::PromotionReason;
    use fp16mg_testkit::check;

    #[test]
    fn fp16_levels_scan_finite_after_setup_then_scale() {
        // Guard-layer property: whatever (possibly far out-of-range)
        // magnitude the fine operator has, every stored level of a
        // setup-then-scale FP16 hierarchy must classify as all-finite.
        check("fp16_levels_scan_finite_after_setup_then_scale", |rng| {
            let scale = 10.0f64.powf(rng.f64_range(-6.0, 9.0));
            let a = laplacian(Grid3::cube(8), Pattern::p7(), scale);
            let mg = Mg::<f32>::setup(&a, &MgConfig::d16()).unwrap();
            // num_levels counts the coarsest direct-solve level, which has
            // no stored truncation to scan.
            for lev in 0..mg.num_levels() - 1 {
                let scan = mg.scan_level(lev).unwrap();
                assert!(
                    scan.all_finite(),
                    "scale {scale:e}: level {lev} has {} non-finite entries",
                    scan.total.non_finite()
                );
            }
        });
    }

    #[test]
    fn manual_promotion_widens_level_and_keeps_convergence() {
        let a = laplacian(Grid3::cube(12), Pattern::p7(), 1.0);
        let mut mg = Mg::<f32>::setup(&a, &MgConfig::d16()).unwrap();
        assert_eq!(mg.info().levels[0].precision, Precision::F16);
        assert!(mg.can_promote());

        let ev = mg.promote_level(0, PromotionReason::Manual).expect("promotable");
        assert_eq!(ev.level, 0);
        assert_eq!(ev.from, Precision::F16);
        assert_eq!(ev.to, Precision::F32);
        assert_eq!(ev.corrupt_entries, 0, "clean hierarchy has nothing corrupt");
        assert_eq!(mg.info().levels[0].precision, Precision::F32);
        assert_eq!(mg.promotions().len(), 1);

        // The promoted hierarchy still preconditions correctly.
        let op = MatOp::new(&a, Par::Seq);
        let b = rhs(a.rows());
        let mut x = vec![0.0f64; a.rows()];
        let res = cg(&op, &mut mg, &b, &mut x, &SolveOptions::default());
        assert!(res.converged(), "{res:?}");
    }

    #[test]
    fn promotion_respects_budget_and_source_consumption() {
        let a = laplacian(Grid3::cube(12), Pattern::p7(), 1.0);
        let cfg = MgConfig {
            recovery: crate::RecoveryPolicy { max_promotions: 1, ..Default::default() },
            ..MgConfig::d16()
        };
        let mut mg = Mg::<f32>::setup(&a, &cfg).unwrap();
        assert!(mg.promote_level(0, PromotionReason::Manual).is_some());
        // Same level again: already wide, and the budget is spent.
        assert!(mg.promote_level(0, PromotionReason::Manual).is_none());
        assert!(mg.promote_level(1, PromotionReason::Manual).is_none(), "budget spent");
        assert!(!mg.can_promote());
    }

    #[test]
    fn disabled_recovery_never_promotes() {
        let a = laplacian(Grid3::cube(12), Pattern::p7(), 1.0);
        let cfg = MgConfig { recovery: crate::RecoveryPolicy::disabled(), ..MgConfig::d16() };
        let mut mg = Mg::<f32>::setup(&a, &cfg).unwrap();
        assert!(!mg.can_promote());
        assert!(mg.promote_level(0, PromotionReason::Manual).is_none());
        assert!(mg.promote_for_stagnation().is_none());
    }

    #[test]
    fn full64_hierarchy_has_no_promotable_levels() {
        let a = laplacian(Grid3::cube(12), Pattern::p7(), 1.0);
        let mut mg = Mg::<f64>::setup(&a, &MgConfig::d64()).unwrap();
        assert!(!mg.can_promote(), "no 16-bit level retains a source");
        assert!(mg.promote_for_stagnation().is_none());
        assert!(mg.promotions().is_empty());
    }
}

mod audit_and_autoshift {
    use super::*;
    use crate::{
        ConfigError, RangeAudit, SetupError, ShiftDecision, TruncationError, TruncationPolicy,
    };
    use fp16mg_sgdia::scaling::GChoice;

    /// Two weakly coupled diffusion components: intra-component 7-point
    /// Laplacians of magnitude `s`, plus a tiny same-cell inter-component
    /// coupling. Prolongation acts componentwise, so Galerkin coarsening
    /// can never smear the weak channel into the strong one — and RAP
    /// growth (~4x per level) pushes the hierarchy across FP16_MAX at an
    /// interior level, where scaling kicks in and the weak channel drops
    /// below the FP16 normal range.
    fn weakly_coupled_components(n: usize, s: f64) -> SgDia<f64> {
        let grid = Grid3::with_components(n, n, n, 2);
        let pat = Pattern::p7().with_components(2);
        let taps: Vec<_> = pat.taps().to_vec();
        SgDia::from_fn(grid, pat, Layout::Soa, |_, _, _, _, t| {
            let tap = taps[t];
            if tap.is_diagonal() {
                6.05 * s
            } else if tap.dx == 0 && tap.dy == 0 && tap.dz == 0 {
                -1.0e-5 * s
            } else if tap.cin == tap.cout {
                -s
            } else {
                0.0
            }
        })
    }

    #[test]
    fn precision_for_edge_cases() {
        // shift_levid = 0: no level qualifies for FP16.
        let p = StoragePolicy::Fp16Until { shift_levid: 0, coarse: Precision::F32 };
        assert_eq!(p.precision_for(0), Precision::F32);
        assert_eq!(p.precision_for(7), Precision::F32);
        // usize::MAX: the documented all-FP16 sentinel.
        let p = StoragePolicy::Fp16Until { shift_levid: usize::MAX, coarse: Precision::F32 };
        assert_eq!(p.precision_for(0), Precision::F16);
        assert_eq!(p.precision_for(usize::MAX - 1), Precision::F16);
        // shift_levid == max_levels is valid (every smoothed level is FP16).
        let cfg = MgConfig {
            storage: StoragePolicy::Fp16Until { shift_levid: 10, coarse: Precision::F32 },
            max_levels: 10,
            ..MgConfig::default()
        };
        assert!(cfg.validate().is_ok());
        // AutoShift resolves during setup; before that it reads as FP16.
        let p = StoragePolicy::AutoShift { coarse: Precision::F32, max_underflow: 0.05 };
        assert_eq!(p.precision_for(0), Precision::F16);
        assert_eq!(p.precision_for(9), Precision::F16);
    }

    #[test]
    fn d16_auto_validates_and_rejects_bad_thresholds() {
        assert!(MgConfig::d16_auto().validate().is_ok());
        for t in [-0.1, 1.5, f64::NAN] {
            let cfg = MgConfig {
                storage: StoragePolicy::AutoShift { coarse: Precision::F32, max_underflow: t },
                ..MgConfig::default()
            };
            match cfg.validate() {
                Err(ConfigError::InvalidUnderflowThreshold { .. }) => {}
                other => panic!("threshold {t}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn auto_shift_keeps_benign_problem_all_fp16() {
        let a = laplacian(Grid3::cube(16), Pattern::p7(), 1.0);
        let mg = Mg::<f32>::setup(&a, &MgConfig::d16_auto()).unwrap();
        let info = mg.info();
        let ShiftDecision { chosen, threshold, ref per_level } =
            *info.shift_decision.as_ref().expect("AutoShift must record its decision");
        assert_eq!(chosen, usize::MAX, "benign problem must stay all-FP16");
        assert_eq!(threshold, 0.05);
        assert_eq!(per_level.len(), info.levels.len() - 1, "every smoothed level audited");
        for l in &info.levels[..info.levels.len() - 1] {
            assert_eq!(l.precision, Precision::F16);
        }
    }

    #[test]
    fn auto_shift_switches_at_level_zero_when_finest_underflows() {
        // Every coupling sits below the FP16 normal range: the audit must
        // move the entire hierarchy to the coarse precision.
        let a = laplacian(Grid3::cube(16), Pattern::p7(), 1.0e-8);
        let mg = Mg::<f32>::setup(&a, &MgConfig::d16_auto()).unwrap();
        let info = mg.info();
        let d = info.shift_decision.as_ref().unwrap();
        assert_eq!(d.chosen, 0);
        assert!(d.per_level[0].underflow_loss_fraction() > 0.99);
        for l in &info.levels[..info.levels.len() - 1] {
            assert_eq!(l.precision, Precision::F32);
        }
    }

    #[test]
    fn auto_shift_picks_interior_level_on_weakly_coupled_components() {
        // Finest level: in FP16 range unscaled, weak channel well above
        // the subnormal cutoff - clean audit. Level 1: RAP growth crosses
        // FP16_MAX, scaling normalizes the diagonal to G and the weak
        // inter-component entries land deep in the subnormal range (~50%
        // of the nonzeros). AutoShift must switch exactly there.
        let a = weakly_coupled_components(32, 4.0e3);
        let mg = Mg::<f32>::setup(&a, &MgConfig::d16_auto()).unwrap();
        let info = mg.info();
        let d = info.shift_decision.as_ref().unwrap();
        assert_eq!(d.chosen, 1, "expected the switch at the first scaled level");
        assert!(d.per_level[0].underflow_loss_fraction() <= 0.05);
        assert!(d.per_level[1].underflow_loss_fraction() > 0.05, "{}", d.per_level[1]);
        assert_eq!(d.per_level.len(), 2, "audit stops at the switch level");
        for (i, l) in info.levels[..info.levels.len() - 1].iter().enumerate() {
            let want = if i < 1 { Precision::F16 } else { Precision::F32 };
            assert_eq!(l.precision, want, "level {i}");
        }
        // The decision is explainable to a log reader.
        let msg = d.to_string();
        assert!(msg.contains("shift_levid = 1"), "{msg}");
        // The resolved hierarchy still converges.
        let op = MatOp::new(&a, Par::Seq);
        let b = rhs(a.rows());
        let mut x = vec![0.0f64; a.rows()];
        let mut mg = mg;
        let res = richardson(&op, &mut mg, &b, &mut x, &SolveOptions::default());
        assert!(res.converged(), "{res:?}");
    }

    #[test]
    fn setup_records_g_clamp_in_info() {
        // The diagonal's own ratio pins G_max at S = FP16_MAX, so the
        // oversized Fixed request is clamped to S/2 — recorded, and
        // provably unable to saturate anything.
        let grid = Grid3::cube(8);
        let pat = Pattern::p7();
        let taps: Vec<_> = pat.taps().to_vec();
        let a = SgDia::<f64>::from_fn(grid, pat, Layout::Soa, |_, _, _, _, t| {
            if taps[t].is_diagonal() {
                2.0e8
            } else {
                -1.0e8
            }
        });
        let cfg = MgConfig { g_choice: GChoice::Fixed(1.0e6), ..MgConfig::d16() };
        let mg = Mg::<f32>::setup(&a, &cfg).unwrap();
        let l0 = &mg.info().levels[0];
        assert!(l0.scaled);
        assert_eq!(l0.g_clamped_from, Some(1.0e6), "clamp must be recorded");
        assert!(l0.g.unwrap() < 1.0e6);
        let audit = l0.audit.as_ref().unwrap();
        assert!(audit.overflow_free(), "{audit}");
        // Auto never clamps.
        let mg = Mg::<f32>::setup(&a, &MgConfig::d16()).unwrap();
        assert_eq!(mg.info().levels[0].g_clamped_from, None);
    }

    /// Scale-then-setup with G pushed near its clamp: the finest level is
    /// in range by construction, but Galerkin coarsening regrows the
    /// entries (the Fig. 6 failure mode) until a coarse level saturates.
    fn scale_then_setup_drift_cfg() -> (SgDia<f64>, MgConfig) {
        let a = laplacian(Grid3::cube(32), Pattern::p7(), 1.0);
        let cfg = MgConfig {
            scale: ScaleStrategy::ScaleThenSetup,
            g_choice: GChoice::Fixed(3.2e4),
            ..MgConfig::d16()
        };
        (a, cfg)
    }

    #[test]
    fn reject_policy_turns_saturation_into_typed_error() {
        let (a, cfg) = scale_then_setup_drift_cfg();
        let cfg = MgConfig { truncation: TruncationPolicy::Reject, ..cfg };
        match Mg::<f32>::setup(&a, &cfg) {
            Err(SetupError::Truncation { level, error: TruncationError::Saturation { .. } }) => {
                assert!(level >= 1, "drift saturates a coarse level, got level {level}");
            }
            Err(other) => panic!("expected a coarse-level saturation rejection, got {other:?}"),
            Ok(_) => panic!("expected a coarse-level saturation rejection, got Ok"),
        }
    }

    #[test]
    fn saturate_policy_clamps_and_audits_the_same_overflow() {
        // The same drifting setup under the default Saturate policy: setup
        // succeeds, every stored level stays finite (clamped, not inf),
        // and the audit records the saturation instead of hiding it.
        let (a, cfg) = scale_then_setup_drift_cfg();
        let mg = Mg::<f32>::setup(&a, &cfg).unwrap();
        let info = mg.info();
        let mut saturated = 0u64;
        for l in &info.levels[..info.levels.len() - 1] {
            assert!(l.finite, "Saturate must clamp, not overflow");
            let audit: &RangeAudit = l.audit.as_ref().unwrap();
            saturated += audit.saturate;
        }
        assert!(saturated > 0, "drift must be visible in some level's audit");
    }

    #[test]
    fn reject_policy_accepts_theorem_scaled_out_of_range_problem() {
        // The flip side of Theorem 4.1: with setup-then-scale, even a
        // problem 1e8x out of FP16 range truncates without a single
        // saturating entry, so Reject lets it through.
        let a = laplacian(Grid3::cube(12), Pattern::p7(), 1.0e8);
        let cfg = MgConfig { truncation: TruncationPolicy::Reject, ..MgConfig::d16() };
        let mg = Mg::<f32>::setup(&a, &cfg).unwrap();
        let info = mg.info();
        assert!(info.levels[0].scaled);
        for l in &info.levels[..info.levels.len() - 1] {
            let audit = l.audit.as_ref().unwrap();
            assert!(audit.overflow_free(), "{audit}");
            assert!(audit.headroom < 1.0);
        }
    }

    #[test]
    fn setup_error_display_names_the_failing_level() {
        let err = SetupError::Truncation {
            level: 2,
            error: TruncationError::Saturation { cell: 5, tap: 1, value: 1.0e9, limit: 65504.0 },
        };
        let msg = err.to_string();
        assert!(msg.contains("level 2"), "{msg}");
        assert!(msg.contains("cell 5"), "{msg}");
        assert!(msg.contains("6.5504e4"), "{msg}");
    }
}

#[cfg(feature = "fault-inject")]
mod integrity {
    use super::*;
    use crate::{IntegrityPolicy, RepairTrigger};
    use fp16mg_testkit::check_n;

    #[test]
    fn prop_repair_restores_bit_identical_planes() {
        // For any operator magnitude, any narrow level, any plane, and any
        // bit position: a single-event upset is detected by the sentinel
        // sweep, localized to exactly the flipped (level, tap), and the
        // localized repair re-truncates the level from its retained parent
        // so the recomputed sentinels match the setup-time ones bit for
        // bit (FNV-1a over every stored bit pattern + exact FP64 sums).
        check_n("prop_repair_restores_bit_identical_planes", 64, |rng| {
            let scale = 10.0f64.powf(rng.f64_range(-3.0, 6.0));
            let a = laplacian(Grid3::cube(8), Pattern::p7(), scale);
            let mut cfg = MgConfig::d16();
            cfg.integrity = IntegrityPolicy::armed(0);
            let mut mg = Mg::<f32>::setup(&a, &cfg).unwrap();
            let narrow: Vec<usize> = (0..mg.num_levels() - 1)
                .filter(|&l| {
                    matches!(mg.info().levels[l].precision, Precision::F16 | Precision::BF16)
                })
                .collect();
            assert!(!narrow.is_empty(), "d16 must store narrow levels");
            let level = narrow[rng.usize_range(0, narrow.len())];
            let bit = rng.usize_range(0, 16) as u32;
            let stored = mg.stored_mut(level).unwrap();
            let tap = rng.usize_range(0, stored.pattern().len());
            if stored.inject_bit_flip_tap(tap, bit).is_none() {
                return; // all-zero plane on a coarse stencil: nothing to upset
            }

            let corrupted = mg.verify_integrity();
            assert_eq!(corrupted.len(), 1, "exactly one level corrupted: {corrupted:?}");
            assert_eq!(corrupted[0].0, level, "localized to the flipped level");
            let flagged: Vec<usize> = corrupted[0].1.iter().map(|m| m.tap).collect();
            assert_eq!(flagged, vec![tap], "localized to the flipped plane");

            let events = mg.verify_and_repair(RepairTrigger::Requested);
            assert_eq!(events.len(), 1, "one localized repair: {events:?}");
            assert_eq!((events[0].level, events[0].taps.as_slice()), (level, &[tap][..]));
            assert!(
                mg.verify_integrity().is_empty(),
                "repair must restore every plane bit-identically (scale {scale:e}, \
                 level {level}, tap {tap}, bit {bit})"
            );
        });
    }
}

mod economize {
    use super::*;
    use crate::ConfigError;

    #[test]
    fn economize_switches_storage_and_drops_retained_parents() {
        let cfg = MgConfig::d16().economize(2).unwrap();
        assert_eq!(
            cfg.storage,
            StoragePolicy::Fp16Until { shift_levid: 2, coarse: Precision::F32 }
        );
        assert!(
            !cfg.integrity.retain_parents,
            "under overload the parent copies are traded for throughput"
        );
    }

    #[test]
    fn economize_validates_the_degraded_configuration() {
        let base = MgConfig { max_levels: 3, ..MgConfig::d16() };
        assert_eq!(
            base.economize(7).unwrap_err(),
            ConfigError::ShiftBeyondLevels { shift_levid: 7, max_levels: 3 },
            "a shed-time downgrade must not smuggle in a contradiction"
        );
        // usize::MAX is the documented "all FP16" sentinel, not an error.
        assert!(base.economize(usize::MAX).is_ok());
    }

    #[test]
    fn economize_preserves_the_numerical_shape() {
        let base = MgConfig::d16();
        let cfg = base.economize(2).unwrap();
        assert_eq!(cfg.max_levels, base.max_levels);
        assert_eq!(cfg.smoother, base.smoother);
        assert_eq!(cfg.nu1, base.nu1);
        assert_eq!(cfg.nu2, base.nu2);
        assert_eq!(cfg.layout, base.layout);
        // The economized hierarchy still builds and solves.
        let a = laplacian(Grid3::cube(8), Pattern::p7(), 1.0);
        let op = MatOp::new(&a, Par::Seq);
        let mut mg = Mg::<f32>::setup(&a, &cfg).expect("economized config must set up");
        let b = vec![1.0f64; a.rows()];
        let mut x = vec![0.0f64; b.len()];
        let res = cg(&op, &mut mg, &b, &mut x, &SolveOptions::default());
        assert!(res.converged(), "{:?}", res.reason);
    }
}

// ----------------------------------------------------- hierarchy cache --

mod chain_reuse {
    use super::*;
    use crate::{GalerkinChain, SetupError};

    fn solve_history(mg: &mut Mg<f32>, a: &SgDia<f64>) -> Vec<u64> {
        let op = MatOp::new(a, Par::Seq);
        let b = rhs(a.rows());
        let mut x = vec![0.0f64; a.rows()];
        let opts =
            SolveOptions { tol: 1e-8, max_iters: 60, record_history: true, ..Default::default() };
        let res = richardson(&op, mg, &b, &mut x, &opts);
        assert_eq!(res.reason, StopReason::Converged);
        res.history.iter().map(|r| r.to_bits()).collect()
    }

    /// CG iterations to 1e-8 — the outer Krylov solve the cache's
    /// rescale-in-place path actually runs under (a stationary
    /// iteration cannot absorb a mis-scaled coarse correction; Krylov
    /// can, which is exactly why Galerkin lag is sound there).
    fn cg_iters(mg: &mut Mg<f32>, a: &SgDia<f64>) -> usize {
        let op = MatOp::new(a, Par::Seq);
        let b = rhs(a.rows());
        let mut x = vec![0.0f64; a.rows()];
        let opts = SolveOptions { tol: 1e-8, max_iters: 100, ..Default::default() };
        let res = cg(&op, mg, &b, &mut x, &opts);
        assert_eq!(res.reason, StopReason::Converged);
        res.iters
    }

    #[test]
    fn setup_from_chain_is_bit_identical_to_setup() {
        let a = laplacian(Grid3::cube(12), Pattern::p7(), 1.0);
        let config = MgConfig::d16();
        let chain = GalerkinChain::build(&a, &config).unwrap();
        assert!(chain.len() > 1 && !chain.is_empty());

        let mut direct = Mg::<f32>::setup(&a, &config).unwrap();
        let mut reused = Mg::<f32>::setup_from_chain(&chain, &config).unwrap();
        assert_eq!(
            format!("{:?}", direct.info()),
            format!("{:?}", reused.info()),
            "level structure, precisions, and scaling decisions must match"
        );
        // The warm path must produce the same hierarchy bit for bit:
        // identical residual trajectories, not merely similar ones.
        assert_eq!(solve_history(&mut direct, &a), solve_history(&mut reused, &a));
    }

    #[test]
    fn rescaled_setup_serves_a_drifted_operator() {
        let a = laplacian(Grid3::cube(12), Pattern::p7(), 1.0);
        let config = MgConfig::d16();
        let mut chain = GalerkinChain::build(&a, &config).unwrap();

        // A 4x-rescaled operator reuses the coarse tail (Galerkin lag)…
        let drifted = laplacian(Grid3::cube(12), Pattern::p7(), 4.0);
        let mut mg = Mg::<f32>::setup_rescaled(&drifted, &chain, &config).unwrap();
        let warm = cg_iters(&mut mg, &drifted);
        // …and still converges like a cold rebuild (the lagged coarse
        // correction is only a preconditioner).
        let mut cold = Mg::<f32>::setup(&drifted, &config).unwrap();
        let rebuilt = cg_iters(&mut cold, &drifted);
        // The lagged tail mis-scales the coarse correction by the drift
        // factor, which CG absorbs at ~sqrt(drift) extra iterations —
        // the price of skipping the Galerkin setup, bounded but not
        // free. Past rescale_max the cache rebuilds instead.
        assert!(
            warm <= rebuilt * 3,
            "Galerkin lag must not derail convergence: {warm} vs {rebuilt} iters"
        );

        // Committing the swap makes the chain serve the drifted finest
        // directly through the plain warm path.
        chain.swap_finest(&drifted, &config).unwrap();
        let mut committed = Mg::<f32>::setup_from_chain(&chain, &config).unwrap();
        cg_iters(&mut committed, &drifted);
    }

    #[test]
    fn incompatible_chains_are_refused_typed() {
        let a = laplacian(Grid3::cube(12), Pattern::p7(), 1.0);
        let prescaled = MgConfig { scale: ScaleStrategy::ScaleThenSetup, ..MgConfig::d16() };

        // ScaleThenSetup bakes the finest scaling into the chain: both
        // building and reusing refuse it.
        assert!(matches!(
            GalerkinChain::build(&a, &prescaled),
            Err(SetupError::ChainIncompatible { .. })
        ));
        let chain = GalerkinChain::build(&a, &MgConfig::d16()).unwrap();
        assert!(matches!(
            Mg::<f32>::setup_from_chain(&chain, &prescaled),
            Err(SetupError::ChainIncompatible { .. })
        ));

        // Geometry mismatches are refused, not coerced.
        let smaller = laplacian(Grid3::cube(8), Pattern::p7(), 1.0);
        assert!(matches!(
            Mg::<f32>::setup_rescaled(&smaller, &chain, &MgConfig::d16()),
            Err(SetupError::ChainIncompatible { .. })
        ));
        let mut chain = chain;
        assert!(matches!(
            chain.swap_finest(&smaller, &MgConfig::d16()),
            Err(SetupError::ChainIncompatible { .. })
        ));
    }
}
