//! The multigrid hierarchy: Algorithm 1 setup, Algorithm 3 V-cycle, and
//! the Algorithm 2 preconditioner interface.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use fp16mg_fp::{Precision, Scalar};
use fp16mg_grid::Grid3;
use fp16mg_krylov::Preconditioner;
use fp16mg_sgdia::audit::{self, RangeAudit, TruncationError};
use fp16mg_sgdia::kernels::BlockDiagInv;
use fp16mg_sgdia::scaling::{self, rescale_into, ScaleVectors};
use fp16mg_sgdia::sentinel::{MatrixSentinels, TapMismatch};
use fp16mg_sgdia::SgDia;

use fp16mg_sgdia::scaling::GChoice;
use fp16mg_sgdia::scan::MatrixScan;

use crate::coarsen::{directional_strength, galerkin_rap_axes};
use crate::config::{Coarsening, ConfigError, Cycle, MgConfig, ScaleStrategy, StoragePolicy};
use crate::level::Level;
use crate::smoother::DenseLu;
use crate::stored::StoredMatrix;
use crate::transfer::{prolong_add, restrict};
use crate::workspace::{checked_unknowns, Workspace};

/// Setup failure.
#[derive(Clone, Debug, PartialEq)]
pub enum SetupError {
    /// The configuration failed [`MgConfig::validate`].
    InvalidConfig(ConfigError),
    /// Theorem 4.1 requires positive, finite diagonals; this unknown's is
    /// not (the core-boundary form of
    /// [`fp16mg_sgdia::scaling::ScalingError`]).
    NonPositiveDiagonal {
        /// Level index.
        level: usize,
        /// Offending unknown.
        unknown: usize,
        /// The offending diagonal value.
        value: f64,
    },
    /// The configured [`fp16mg_sgdia::audit::TruncationPolicy`] refused a
    /// truncation (an entry would saturate the storage range, or the
    /// source itself is non-finite).
    Truncation {
        /// Level index.
        level: usize,
        /// The refused truncation.
        error: TruncationError,
    },
    /// A diagonal block could not be inverted for the smoother.
    SingularDiagonalBlock {
        /// Level index.
        level: usize,
        /// Offending cell.
        cell: usize,
    },
    /// The coarsest-level dense factorization failed.
    SingularCoarseMatrix {
        /// Column whose pivot vanished (or was non-finite).
        pivot: usize,
    },
    /// More components per cell than the kernels support (8).
    TooManyComponents,
    /// A retained [`GalerkinChain`] cannot serve this request: the
    /// scaling strategy pre-bakes a finest-level scaling into the chain
    /// (`ScaleThenSetup`), or the supplied finest operator's geometry
    /// disagrees with the chain's.
    ChainIncompatible {
        /// What made the chain unusable.
        reason: String,
    },
    /// A setup allocation was refused: the checked size computation
    /// overflowed (hostile dimensions) or exceeded the arena ceiling.
    /// The setup path never aborts on an oversized request — it returns
    /// this typed error instead (the hierarchy-side analog of the
    /// `sgdia::io` decode limits).
    AllocTooLarge {
        /// Which allocation was refused.
        what: &'static str,
        /// Requested bytes (`u64::MAX` when the size computation itself
        /// overflowed).
        bytes: u64,
        /// The ceiling that refused it.
        limit: u64,
    },
}

impl core::fmt::Display for SetupError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SetupError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            SetupError::NonPositiveDiagonal { level, unknown, value } => {
                write!(f, "non-positive diagonal at level {level}, unknown {unknown} ({value:e})")
            }
            SetupError::Truncation { level, error } => {
                write!(f, "truncation rejected at level {level}: {error}")
            }
            SetupError::SingularDiagonalBlock { level, cell } => {
                write!(f, "singular diagonal block at level {level}, cell {cell}")
            }
            SetupError::SingularCoarseMatrix { pivot } => {
                write!(f, "singular coarsest-level matrix (pivot column {pivot})")
            }
            SetupError::TooManyComponents => write!(f, "more than 8 components per cell"),
            SetupError::ChainIncompatible { reason } => {
                write!(f, "retained Galerkin chain unusable: {reason}")
            }
            SetupError::AllocTooLarge { what, bytes, limit } => {
                if *bytes == u64::MAX {
                    write!(f, "allocation refused: {what} size computation overflowed")
                } else {
                    write!(f, "allocation refused: {what} needs {bytes} bytes (limit {limit})")
                }
            }
        }
    }
}

impl std::error::Error for SetupError {}

impl From<ConfigError> for SetupError {
    fn from(e: ConfigError) -> Self {
        SetupError::InvalidConfig(e)
    }
}

/// Why a level was promoted to a wider storage precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PromotionReason {
    /// The V-cycle output contained ±∞/NaN and this level was implicated
    /// (corrupt stored values, or the coarsest reduced-precision level as
    /// the §4.3-style suspect when no corruption was visible).
    NonFiniteOutput,
    /// The outer solve stagnated above the FP16 unit-roundoff floor and
    /// asked the hierarchy to shed precision-attributable error.
    Stagnation,
    /// Explicit caller request.
    Manual,
}

impl core::fmt::Display for PromotionReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PromotionReason::NonFiniteOutput => write!(f, "non-finite V-cycle output"),
            PromotionReason::Stagnation => write!(f, "stagnation above the FP16 floor"),
            PromotionReason::Manual => write!(f, "manual request"),
        }
    }
}

/// One runtime storage-precision promotion, logged in [`MgInfo`].
#[derive(Clone, Debug)]
pub struct PromotionEvent {
    /// Promoted level.
    pub level: usize,
    /// Storage precision before promotion.
    pub from: Precision,
    /// Storage precision after promotion.
    pub to: Precision,
    /// What triggered it.
    pub reason: PromotionReason,
    /// Non-finite stored values found in the level at promotion time
    /// (zero when the promotion was precautionary).
    pub corrupt_entries: u64,
}

impl core::fmt::Display for PromotionEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "level {} promoted {:?} -> {:?} ({}; {} corrupt entries)",
            self.level, self.from, self.to, self.reason, self.corrupt_entries
        )
    }
}

/// Integrity sentinel of one level's stored matrix, taken at setup (and
/// refreshed after any promotion or repair that changes the stored bits).
#[derive(Clone, Debug)]
pub struct LevelSentinel {
    /// Storage precision the sentinels were taken over (the checksum is
    /// format-sensitive, so a promoted level needs fresh sentinels).
    pub precision: Precision,
    /// Per-plane checksums and FP64 sum invariants.
    pub sentinels: MatrixSentinels,
}

/// What triggered an integrity verification-and-repair sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairTrigger {
    /// The periodic `check_every` V-cycle cadence.
    Periodic,
    /// The self-healing `apply_pr` loop saw non-finite output.
    NonFiniteOutput,
    /// The Krylov solver reported a health anomaly through the
    /// preconditioner hook.
    Anomaly,
    /// Explicit caller request (e.g. the runtime's `repair-level` rung).
    Requested,
}

impl core::fmt::Display for RepairTrigger {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RepairTrigger::Periodic => write!(f, "periodic check"),
            RepairTrigger::NonFiniteOutput => write!(f, "non-finite V-cycle output"),
            RepairTrigger::Anomaly => write!(f, "solver health anomaly"),
            RepairTrigger::Requested => write!(f, "explicit request"),
        }
    }
}

/// One localized in-place repair of a corrupted level, logged in
/// [`MgInfo`]: the level's stored matrix was re-truncated from its
/// retained high-precision parent — bit-identically, without touching any
/// other level and without a hierarchy rebuild.
#[derive(Clone, Debug)]
pub struct RepairEvent {
    /// Repaired level.
    pub level: usize,
    /// The coefficient planes (taps) the sentinels flagged as corrupted.
    pub taps: Vec<usize>,
    /// Storage precision of the repaired level.
    pub precision: Precision,
    /// What triggered the sweep that found the corruption.
    pub trigger: RepairTrigger,
}

impl core::fmt::Display for RepairEvent {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "level {} ({}) repaired in place, corrupt taps {:?} ({})",
            self.level,
            self.precision.name(),
            self.taps,
            self.trigger
        )
    }
}

/// Per-level summary for reports (Table 3, Fig. 3).
#[derive(Clone, Debug)]
pub struct LevelInfo {
    /// Grid extents.
    pub dims: (usize, usize, usize),
    /// Unknowns `n_l`.
    pub unknowns: usize,
    /// Nonzeros `Z_l`.
    pub nnz: usize,
    /// Storage precision of the level's matrix.
    pub precision: Precision,
    /// Whether setup-then-scale fired on this level.
    pub scaled: bool,
    /// The scaling constant `G` when scaled.
    pub g: Option<f64>,
    /// Whether all stored values are finite after truncation.
    pub finite: bool,
    /// Bytes of matrix value data stored.
    pub value_bytes: usize,
    /// Precision audit of the level's truncation: what storing the
    /// (scaled) high-precision operator at `precision` did to its range
    /// (`None` for the coarsest/direct level, which is never truncated).
    pub audit: Option<RangeAudit>,
    /// When a user-fixed `G` was clamped to `G_max/2` on this level, the
    /// originally requested value — the clamp is recorded, never silent.
    pub g_clamped_from: Option<f64>,
    /// Integrity sentinels of the stored matrix (`None` for the
    /// coarsest/direct level, or when the integrity policy has sentinels
    /// off).
    pub sentinel: Option<LevelSentinel>,
}

/// Hierarchy summary.
#[derive(Clone, Debug)]
pub struct MgInfo {
    /// One entry per level, finest first (the coarsest/direct level
    /// included, tagged with the computation precision).
    pub levels: Vec<LevelInfo>,
    /// Grid complexity `C_G = Σ n_l / n_0` (Eq. 3).
    pub grid_complexity: f64,
    /// Operator complexity `C_O = Σ Z_l / Z_0` (Eq. 3).
    pub operator_complexity: f64,
    /// Total bytes of matrix data across smoothed levels.
    pub matrix_bytes: usize,
    /// Runtime storage-precision promotions, in the order they fired
    /// (empty for a healthy solve).
    pub promotions: Vec<PromotionEvent>,
    /// Localized integrity repairs, in the order they fired (empty while
    /// the stored planes match their sentinels).
    pub repairs: Vec<RepairEvent>,
    /// How `StoragePolicy::AutoShift` resolved the FP16→coarse switch
    /// point (`None` for the static storage policies).
    pub shift_decision: Option<ShiftDecision>,
}

/// The record of one `AutoShift` resolution: which level the audit chose
/// as the FP16→coarse switch point, and the evidence.
#[derive(Clone, Debug)]
pub struct ShiftDecision {
    /// The resolved `shift_levid`: first level stored in the coarse
    /// precision (`usize::MAX` when every audited level stayed within
    /// the threshold — all-FP16).
    pub chosen: usize,
    /// The underflow-loss threshold the decision used.
    pub threshold: f64,
    /// FP16 audit of each smoothed level, finest first, as seen by the
    /// decision (each level audited post-scaling, exactly as the store
    /// path would truncate it).
    pub per_level: Vec<RangeAudit>,
}

impl core::fmt::Display for ShiftDecision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.chosen == usize::MAX {
            write!(
                f,
                "auto shift_levid: all {} audited levels within underflow threshold {:.1}% — \
                 FP16 throughout",
                self.per_level.len(),
                self.threshold * 100.0
            )
        } else {
            write!(
                f,
                "auto shift_levid = {}: level {} underflow loss {:.2}% exceeds threshold {:.1}%",
                self.chosen,
                self.chosen,
                self.per_level
                    .get(self.chosen)
                    .map(|a| a.underflow_loss_fraction() * 100.0)
                    .unwrap_or(f64::NAN),
                self.threshold * 100.0
            )
        }
    }
}

/// The FP16-capable structured multigrid preconditioner.
///
/// Generic over the preconditioner computation precision `Pr` (the
/// paper's `P`, normally `f32`); the storage precision is per-level
/// runtime state. Implements [`Preconditioner`] for any iterative
/// precision `K` — the `K`→`Pr` truncation and `Pr`→`K` recovery of
/// Algorithm 2 happen at the boundary.
pub struct Mg<Pr: Scalar = f32> {
    levels: Vec<Level<Pr>>,
    /// FP32 copies of the *unscaled* high-precision operators of the
    /// 16-bit-stored levels, retained when recovery is enabled: the
    /// material a promotion rebuilds the level from. `None` for levels
    /// already wide, or once a level's promotion has consumed its source.
    sources: Vec<Option<SgDia<f32>>>,
    /// The exact f64 operators the narrow levels were truncated from
    /// (post-scaling), retained under `IntegrityPolicy::retain_parents`:
    /// re-truncating one through the same deterministic store path
    /// reproduces the level bit-identically, which is what makes localized
    /// repair exact. `None` per level otherwise.
    repair_sources: Vec<Option<SgDia<f64>>>,
    coarse_grid: Grid3,
    coarse_lu: DenseLu,
    coarse_f: Vec<Pr>,
    coarse_x64: Vec<f64>,
    coarse_s64: Vec<f64>,
    /// Finest-level rescale wrap for the scale-then-setup strategy.
    finest_scale: Option<ScaleVectors<Pr>>,
    /// The preallocated solve arena: every per-level V-cycle buffer and
    /// the `K`↔`Pr` boundary pair, carved once at setup so the
    /// steady-state hot loop is allocation-free.
    ws: Workspace<Pr>,
    config: MgConfig,
    info: MgInfo,
    /// Cycle applications performed, counting re-runs inside the
    /// self-healing `apply_pr` loop. Shared (`Arc`) so an outer runtime
    /// budget can watch V-cycle consumption while a solve is in flight.
    cycles: Arc<AtomicUsize>,
}

impl<Pr: Scalar> Mg<Pr> {
    /// Builds the hierarchy from the finest-level matrix (Algorithm 1).
    ///
    /// ```
    /// use fp16mg_core::{Mg, MgConfig};
    /// use fp16mg_grid::Grid3;
    /// use fp16mg_sgdia::{Layout, SgDia};
    /// use fp16mg_stencil::Pattern;
    ///
    /// // 7-point Poisson on a 8³ grid, FP16 storage with setup-then-scale.
    /// let pattern = Pattern::p7();
    /// let taps: Vec<_> = pattern.taps().to_vec();
    /// let a = SgDia::<f64>::from_fn(Grid3::cube(8), pattern, Layout::Soa,
    ///     |_, _, _, _, t| if taps[t].is_diagonal() { 6.0 } else { -1.0 });
    /// let mg = Mg::<f32>::setup(&a, &MgConfig::d16()).unwrap();
    /// assert!(mg.info().grid_complexity < 1.2);
    /// ```
    ///
    /// # Errors
    /// See [`SetupError`].
    pub fn setup(a: &SgDia<f64>, config: &MgConfig) -> Result<Self, SetupError> {
        config.validate()?;
        if a.grid().components > 8 {
            return Err(SetupError::TooManyComponents);
        }
        let config = config.clone();

        // --- Galerkin chain in f64 (lines 1–3). ---
        let mut finest = a.to_layout(config.layout);
        let mut finest_scale = None;
        if config.scale == ScaleStrategy::ScaleThenSetup {
            // The inferior §4.3 alternative: scale the problem matrix once,
            // before the triple-product chain sees it.
            let fp16_max = fp16mg_fp::F16::MAX_F64;
            let sv = scaling::scale_symmetric::<Pr>(&mut finest, config.g_choice, fp16_max)
                .map_err(|e| SetupError::NonPositiveDiagonal {
                    level: 0,
                    unknown: e.unknown(),
                    value: e.value(),
                })?;
            finest_scale = Some(sv);
        }
        let chain = build_chain(finest, &config);
        let mats: Vec<&SgDia<f64>> = chain.iter().collect();
        Self::assemble(&mats, finest_scale, config)
    }

    /// Builds the hierarchy from a retained FP64 [`GalerkinChain`] —
    /// the cheap path behind a hierarchy cache. Only the per-level
    /// scale-and-truncate, smoother setup, and coarsest factorization
    /// run (Algorithm 1 lines 4–14); the Galerkin triple products
    /// (lines 1–3, the dominant setup cost) are reused as-is.
    ///
    /// Rebuilding from the same chain and config is deterministic: the
    /// stored levels are bit-identical to a full [`Mg::setup`] with the
    /// same inputs.
    ///
    /// # Errors
    /// [`SetupError::ChainIncompatible`] for `ScaleThenSetup` configs
    /// (the chain would embed a finest scaling, making it single-use);
    /// otherwise see [`SetupError`].
    pub fn setup_from_chain(chain: &GalerkinChain, config: &MgConfig) -> Result<Self, SetupError> {
        config.validate()?;
        reject_prescaled(config)?;
        let mats: Vec<&SgDia<f64>> = chain.mats.iter().collect();
        Self::assemble(&mats, None, config.clone())
    }

    /// Builds the hierarchy from a *drifted* finest operator while
    /// reusing the retained chain's coarse tail — the rescale-in-place
    /// path of a hierarchy cache. The finest level's diagonal scaling
    /// and truncation are re-derived from `finest` (so Theorem 4.1's
    /// no-overflow guarantee holds for the new values), while levels
    /// below keep the cached Galerkin operators: a deliberate
    /// Galerkin-lag approximation, sound while the drift bound is small
    /// because the coarse correction only needs to approximate the fine
    /// operator's action, and the outer Krylov iteration on the exact
    /// drifted operator absorbs the residual difference.
    ///
    /// # Errors
    /// [`SetupError::ChainIncompatible`] when the config is
    /// `ScaleThenSetup` or `finest`'s geometry disagrees with the
    /// chain's; otherwise see [`SetupError`].
    pub fn setup_rescaled(
        finest: &SgDia<f64>,
        chain: &GalerkinChain,
        config: &MgConfig,
    ) -> Result<Self, SetupError> {
        config.validate()?;
        reject_prescaled(config)?;
        chain.check_finest_geometry(finest)?;
        let owned = finest.to_layout(config.layout);
        let mut mats: Vec<&SgDia<f64>> = Vec::with_capacity(chain.mats.len());
        mats.push(&owned);
        mats.extend(chain.mats.iter().skip(1));
        Self::assemble(&mats, None, config.clone())
    }

    /// Algorithm 1 lines 4–14 over an already-built Galerkin chain:
    /// AutoShift resolution, per-level scale-and-truncate, smoother
    /// data, coarsest dense LU.
    fn assemble(
        chain: &[&SgDia<f64>],
        finest_scale: Option<ScaleVectors<Pr>>,
        mut config: MgConfig,
    ) -> Result<Self, SetupError> {
        // --- Workspace arena, sized first with checked arithmetic so
        // hostile dimensions fail typed before any level is built. ---
        let nlev = chain.len();
        let mut level_unknowns = Vec::with_capacity(nlev.saturating_sub(1));
        for ai in chain.iter().take(nlev - 1) {
            level_unknowns.push(checked_unknowns(ai.grid())?);
        }
        let finest_rows = checked_unknowns(chain[0].grid())?;
        let ws = Workspace::for_levels(&level_unknowns, finest_rows)?;

        // --- Adaptive shift_levid: audit the chain, pick the switch. ---
        let mut shift_decision = None;
        if let StoragePolicy::AutoShift { coarse, max_underflow } = config.storage {
            let decision = resolve_auto_shift(chain, &config, max_underflow);
            config.storage = StoragePolicy::Fp16Until { shift_levid: decision.chosen, coarse };
            shift_decision = Some(decision);
        }

        // --- Per-level scale-and-truncate (lines 4–14). ---
        let mut levels = Vec::with_capacity(nlev.saturating_sub(1));
        let mut sources = Vec::with_capacity(nlev.saturating_sub(1));
        let mut repair_sources = Vec::with_capacity(nlev.saturating_sub(1));
        let mut infos = Vec::with_capacity(nlev);
        for (i, ai) in chain.iter().enumerate().take(nlev - 1) {
            let prec = config.storage.precision_for(i);
            let parts = build_level(ai, prec, &config, i)?;
            let LevelParts { stored, scale, dinv, ilu, cheb, audit, g_clamped_from, parent } =
                parts;
            // Retain promotion material for the narrow levels: the
            // unscaled operator in FP32 is exact enough to rebuild the
            // level at FP32 and costs 2× the FP16 level it insures.
            let keep_source = config.recovery.enabled
                && matches!(stored.precision(), Precision::F16 | Precision::BF16);
            sources.push(if keep_source { Some(ai.convert::<f32>()) } else { None });
            repair_sources.push(parent);
            let sentinel = config.integrity.sentinels.then(|| LevelSentinel {
                precision: stored.precision(),
                sentinels: stored.sentinels(),
            });
            infos.push(LevelInfo {
                dims: (ai.grid().nx, ai.grid().ny, ai.grid().nz),
                unknowns: ai.rows(),
                nnz: ai.nnz(),
                precision: stored.precision(),
                scaled: scale.is_some(),
                g: scale.as_ref().map(|s: &ScaleVectors<Pr>| s.g),
                finite: stored.all_finite(),
                value_bytes: stored.value_bytes(),
                audit: Some(audit),
                g_clamped_from,
                sentinel,
            });
            levels.push(Level::new(*ai.grid(), stored, scale, dinv, ilu, cheb, config.par));
        }

        // --- Coarsest level: dense LU of the exact f64 operator. ---
        let coarsest = chain.last().expect("chain holds at least the finest matrix");
        let coarse_lu = DenseLu::factor(coarsest)
            .map_err(|e| SetupError::SingularCoarseMatrix { pivot: e.column() })?;
        let cn = coarsest.rows();
        infos.push(LevelInfo {
            dims: (coarsest.grid().nx, coarsest.grid().ny, coarsest.grid().nz),
            unknowns: cn,
            nnz: coarsest.nnz(),
            precision: Precision::F64,
            scaled: false,
            g: None,
            finite: true,
            value_bytes: coarsest.value_bytes(),
            audit: None,
            g_clamped_from: None,
            sentinel: None,
        });

        // ScaleThenSetup applies its single scaling before `build_level`
        // ever runs, so its G clamp must be surfaced here instead.
        if let (Some(sv), Some(info0)) = (&finest_scale, infos.first_mut()) {
            info0.g_clamped_from = sv.g_clamped_from;
        }

        let n0 = infos[0].unknowns as f64;
        let z0 = infos[0].nnz as f64;
        let info = MgInfo {
            grid_complexity: infos.iter().map(|l| l.unknowns as f64).sum::<f64>() / n0,
            operator_complexity: infos.iter().map(|l| l.nnz as f64).sum::<f64>() / z0,
            matrix_bytes: infos.iter().take(nlev - 1).map(|l| l.value_bytes).sum(),
            levels: infos,
            promotions: Vec::new(),
            repairs: Vec::new(),
            shift_decision,
        };

        Ok(Mg {
            levels,
            sources,
            repair_sources,
            coarse_grid: *coarsest.grid(),
            coarse_lu,
            coarse_f: vec![Pr::ZERO; cn],
            coarse_x64: vec![0.0; cn],
            coarse_s64: vec![0.0; cn],
            finest_scale,
            ws,
            config,
            info,
            cycles: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// Hierarchy summary (complexities, per-level precisions).
    pub fn info(&self) -> &MgInfo {
        &self.info
    }

    /// The configuration the hierarchy was built with.
    pub fn config(&self) -> &MgConfig {
        &self.config
    }

    /// Number of levels including the coarsest direct-solve level.
    pub fn num_levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// Applies one V-cycle to the right-hand side already loaded into the
    /// finest level's `f`, leaving the result in the finest `u`
    /// (Algorithm 3).
    /// Runs one multigrid cycle with the right-hand side already loaded
    /// into the finest level's `f`, leaving the result in the finest `u`
    /// (Algorithm 3 for the V-cycle; W/F recurse per [`Cycle`]).
    fn vcycle(&mut self) {
        if self.levels.is_empty() {
            // Degenerate single-level hierarchy: direct solve.
            self.coarse_solve_from_own_f();
            return;
        }
        self.ws.level(0).u.fill(Pr::ZERO);
        self.cycle_at(0, self.config.cycle);
    }

    /// Recursive γ-cycle at level `i`. The caller owns the iterate policy:
    /// `u_i` is *not* reset here, so consecutive invocations iterate
    /// (that is what makes γ = 2 a W-cycle). All vectors come from the
    /// preallocated workspace arena — this path performs no allocation.
    fn cycle_at(&mut self, i: usize, cycle: Cycle) {
        let nl = self.levels.len();
        {
            let mut b = self.ws.level(i);
            self.levels[i].smooth(self.config.smoother, self.config.nu1, false, &mut b);
            self.levels[i].compute_residual(&mut b);
        }
        if i + 1 < nl {
            let gf = self.levels[i].grid;
            let gc = self.levels[i + 1].grid;
            {
                let (fine, coarse) = self.ws.level_pair(i, i + 1);
                restrict(&gf, &gc, fine.r, coarse.f);
                coarse.u.fill(Pr::ZERO);
            }
            match cycle {
                Cycle::V => self.cycle_at(i + 1, Cycle::V),
                Cycle::W => {
                    self.cycle_at(i + 1, Cycle::W);
                    self.cycle_at(i + 1, Cycle::W);
                }
                Cycle::F => {
                    // F-cycle: one F-visit followed by one V-visit.
                    self.cycle_at(i + 1, Cycle::F);
                    self.cycle_at(i + 1, Cycle::V);
                }
            }
            let (fine, coarse) = self.ws.level_pair(i, i + 1);
            prolong_add(&gf, &gc, coarse.u, fine.u);
        } else {
            // Coarsest: restrict into the direct-solve buffers and solve
            // exactly (repeating it would be a no-op, so γ is irrelevant
            // here).
            let gf = self.levels[i].grid;
            {
                let b = self.ws.level(i);
                restrict(&gf, &self.coarse_grid, b.r, &mut self.coarse_f);
            }
            self.coarse_solve_from_own_f();
            for (cf, &x) in self.coarse_f.iter_mut().zip(&self.coarse_x64) {
                *cf = Pr::from_f64(x);
            }
            let b = self.ws.level(i);
            prolong_add(&gf, &self.coarse_grid, &self.coarse_f, b.u);
        }
        let mut b = self.ws.level(i);
        self.levels[i].smooth(self.config.smoother, self.config.nu2, true, &mut b);
    }

    fn coarse_solve_from_own_f(&mut self) {
        for (x, &f) in self.coarse_x64.iter_mut().zip(&self.coarse_f) {
            *x = f.to_f64();
        }
        self.coarse_lu.solve(&mut self.coarse_x64, &mut self.coarse_s64);
    }

    /// Preconditioner application in the computation precision:
    /// `e ≈ A⁻¹ r` via one V-cycle.
    ///
    /// When the [`crate::RecoveryPolicy`] is enabled, the output is
    /// scanned for ±∞/NaN; a non-finite result triggers a storage
    /// promotion of the implicated level (see [`Mg::promote_level`]) and
    /// the cycle re-runs, bounded by the promotion budget. A hierarchy
    /// whose levels are all healthy pays exactly one pass over the output
    /// vector for this guard.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn apply_pr(&mut self, r: &[Pr], e: &mut [Pr]) {
        self.apply_pr_once(r, e);
        let every = self.config.integrity.check_every;
        if every > 0 && self.vcycles().is_multiple_of(every) {
            // Periodic ABFT cadence: verify the sentinels and repair in
            // place. The sweep charges the cycle counter itself, so
            // session budgets account for the integrity work.
            self.verify_and_repair(RepairTrigger::Periodic);
        }
        if !self.config.recovery.enabled {
            return;
        }
        while !e.iter().all(|v| v.to_f64().is_finite()) {
            // Localized repair first: if the non-finite output traces to a
            // corrupted plane with a retained parent, re-truncation is
            // cheaper than promotion and keeps the level at its storage
            // precision.
            if !self.verify_and_repair(RepairTrigger::NonFiniteOutput).is_empty() {
                self.apply_pr_once(r, e);
                continue;
            }
            if self.promote_suspect(PromotionReason::NonFiniteOutput).is_none() {
                // Budget exhausted or nothing left to promote: surface the
                // non-finite output to the caller (the solver's own
                // NonFiniteResidual breakdown will catch it).
                return;
            }
            self.apply_pr_once(r, e);
        }
    }

    /// One unguarded cycle application.
    fn apply_pr_once(&mut self, r: &[Pr], e: &mut [Pr]) {
        self.cycles.fetch_add(1, Ordering::Relaxed);
        let n = self.rows();
        assert_eq!(r.len(), n, "r length");
        assert_eq!(e.len(), n, "e length");
        if self.levels.is_empty() {
            // Single-level: direct solve, with the scale-then-setup wrap if
            // present (the stored operator is Ã = S⁻¹AS⁻¹).
            match self.finest_scale.take() {
                Some(sv) => {
                    rescale_into(r, &sv.s_inv, &mut self.coarse_f);
                    self.coarse_solve_from_own_f();
                    for ((ei, &x), &si) in e.iter_mut().zip(&self.coarse_x64).zip(&sv.s_inv) {
                        *ei = Pr::from_f64(x) * si;
                    }
                    self.finest_scale = Some(sv);
                }
                None => {
                    self.coarse_f.copy_from_slice(r);
                    self.coarse_solve_from_own_f();
                    for (ei, &x) in e.iter_mut().zip(&self.coarse_x64) {
                        *ei = Pr::from_f64(x);
                    }
                }
            }
            return;
        }
        match self.finest_scale.take() {
            Some(sv) => {
                // scale-then-setup: the hierarchy approximates Ã⁻¹ with
                // Ã = S⁻¹AS⁻¹, so A⁻¹ r = S⁻¹ Ã⁻¹ (S⁻¹ r).
                rescale_into(r, &sv.s_inv, self.ws.level(0).f);
                self.vcycle();
                rescale_into(self.ws.level(0).u, &sv.s_inv, e);
                self.finest_scale = Some(sv);
            }
            None => {
                self.ws.level(0).f.copy_from_slice(r);
                self.vcycle();
                e.copy_from_slice(self.ws.level(0).u);
            }
        }
    }

    /// Bytes held by the preallocated solve workspace (per-level V-cycle
    /// buffers plus the boundary conversion pair). Carved once at setup;
    /// together with [`MgInfo::matrix_bytes`] this is the hierarchy's
    /// steady-state resident footprint.
    pub fn workspace_bytes(&self) -> usize {
        self.ws.bytes()
    }

    /// Number of finest-level unknowns.
    pub fn rows(&self) -> usize {
        match self.levels.first() {
            Some(l) => l.grid.unknowns(),
            None => self.coarse_grid.unknowns(),
        }
    }

    /// The promotions that have fired so far (same data as
    /// `info().promotions`).
    pub fn promotions(&self) -> &[PromotionEvent] {
        &self.info.promotions
    }

    /// Total cycle applications so far, including re-runs the
    /// self-healing `apply_pr` loop performed after a promotion.
    pub fn vcycles(&self) -> usize {
        self.cycles.load(Ordering::Relaxed)
    }

    /// The live V-cycle counter behind [`Mg::vcycles`]. An outer runtime
    /// can clone the `Arc` into its budget guard and enforce a per-solve
    /// V-cycle cap from the solver's per-iteration control hook, without
    /// the hierarchy knowing anything about budgets.
    pub fn cycle_counter(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.cycles)
    }

    /// One-pass classification of level `level`'s stored values
    /// (`None` for the coarsest/direct level and out-of-range indices).
    pub fn scan_level(&self, level: usize) -> Option<MatrixScan> {
        self.levels.get(level).map(|l| l.stored.scan())
    }

    /// True while recovery is on and the promotion budget has headroom.
    pub fn can_promote(&self) -> bool {
        self.config.recovery.enabled
            && self.info.promotions.len() < self.config.recovery.max_promotions
            && self
                .levels
                .iter()
                .zip(&self.sources)
                .any(|(l, s)| s.is_some() && is_narrow(l.stored.precision()))
    }

    /// Promotes one level after the outer solve stagnated above the FP16
    /// unit-roundoff floor: the corrupt level if the scan finds one,
    /// otherwise the *coarsest* 16-bit level — the dynamic analog of
    /// raising `shift_levid` (§4.3), since coarse-level underflow is the
    /// canonical precision-attributable stall.
    pub fn promote_for_stagnation(&mut self) -> Option<PromotionEvent> {
        self.promote_suspect(PromotionReason::Stagnation)
    }

    /// Finds and promotes the most suspect reduced-precision level.
    fn promote_suspect(&mut self, reason: PromotionReason) -> Option<PromotionEvent> {
        if !self.can_promote() {
            return None;
        }
        let mut fallback = None;
        let mut target = None;
        for (i, l) in self.levels.iter().enumerate() {
            if self.sources[i].is_none() || !is_narrow(l.stored.precision()) {
                continue;
            }
            if !l.stored.scan().all_finite() {
                target = Some(i);
                break;
            }
            fallback = Some(i);
        }
        self.promote_level(target.or(fallback)?, reason)
    }

    /// Rebuilds level `level` at FP32 storage from its retained source
    /// operator: fresh truncation, fresh smoother data, and — should the
    /// FP32 range somehow still be exceeded — a re-scale with `G`
    /// tightened by the recovery policy's `g_tighten`. Returns `None`
    /// when the level is not promotable (already wide, source consumed,
    /// or the promotion budget is spent); the event is also logged in
    /// [`MgInfo::promotions`].
    pub fn promote_level(
        &mut self,
        level: usize,
        reason: PromotionReason,
    ) -> Option<PromotionEvent> {
        if !self.config.recovery.enabled
            || self.info.promotions.len() >= self.config.recovery.max_promotions
        {
            return None;
        }
        let lvl = self.levels.get(level)?;
        let from = lvl.stored.precision();
        if !is_narrow(from) {
            return None;
        }
        let corrupt_entries = lvl.stored.scan().total.non_finite();
        let src = self.sources.get_mut(level)?.take()?;
        let a64: SgDia<f64> = src.convert();
        let mut cfg = self.config.clone();
        if let GChoice::Fixed(g) = cfg.g_choice {
            cfg.g_choice = GChoice::Fixed(g * cfg.recovery.g_tighten);
        }
        let parts = match build_level::<Pr>(&a64, Precision::F32, &cfg, level) {
            Ok(p) => p,
            Err(_) => {
                // Keep the source so a later attempt (e.g. after a manual
                // config change) can retry.
                self.sources[level] = Some(src);
                return None;
            }
        };
        let LevelParts { stored, scale, dinv, ilu, cheb, audit, g_clamped_from, .. } = parts;
        let event = PromotionEvent { level, from, to: stored.precision(), reason, corrupt_entries };
        // The widened level replaces the stored bits wholesale: its repair
        // parent no longer matches and is dropped, and the sentinels are
        // retaken over the new format.
        self.repair_sources[level] = None;
        let info = &mut self.info.levels[level];
        info.precision = stored.precision();
        info.scaled = scale.is_some();
        info.g = scale.as_ref().map(|s: &ScaleVectors<Pr>| s.g);
        info.finite = stored.all_finite();
        info.value_bytes = stored.value_bytes();
        info.audit = Some(audit);
        info.g_clamped_from = g_clamped_from;
        info.sentinel = self.config.integrity.sentinels.then(|| LevelSentinel {
            precision: stored.precision(),
            sentinels: stored.sentinels(),
        });
        let l = &mut self.levels[level];
        l.stored = stored;
        l.scale = scale;
        l.dinv = dinv;
        l.ilu = ilu;
        l.cheb_lambda = cheb;
        let nsmoothed = self.levels.len();
        self.info.matrix_bytes =
            self.info.levels.iter().take(nsmoothed).map(|l| l.value_bytes).sum();
        self.info.promotions.push(event.clone());
        Some(event)
    }

    /// Mutable access to a level's stored matrix, for fault-injection
    /// harnesses only.
    #[cfg(feature = "fault-inject")]
    pub fn stored_mut(&mut self, level: usize) -> Option<&mut StoredMatrix> {
        self.levels.get_mut(level).map(|l| &mut l.stored)
    }

    /// The localized repairs that have fired so far (same data as
    /// `info().repairs`).
    pub fn repairs(&self) -> &[RepairEvent] {
        &self.info.repairs
    }

    /// True while sentinels exist, the repair budget has headroom, and at
    /// least one level retains its high-precision parent — i.e. a
    /// verify-and-repair sweep could actually fix something.
    pub fn can_repair(&self) -> bool {
        self.config.integrity.sentinels
            && self.info.repairs.len() < self.config.integrity.max_repairs
            && self.repair_sources.iter().any(Option::is_some)
    }

    /// Verifies every sentineled level against its setup-time sentinels
    /// and returns the corrupted ones as `(level, plane mismatches)`.
    ///
    /// The sweep reads every stored coefficient once — comparable memory
    /// traffic to a V-cycle's matrix pass — so it charges one V-cycle to
    /// the shared counter; an outer session budget therefore accounts for
    /// integrity work exactly like solve work, and a deadline can
    /// interrupt a chaos run that repairs too enthusiastically.
    pub fn verify_integrity(&self) -> Vec<(usize, Vec<TapMismatch>)> {
        self.cycles.fetch_add(1, Ordering::Relaxed);
        let mut corrupted = Vec::new();
        for (i, l) in self.levels.iter().enumerate() {
            let Some(sent) = self.info.levels[i].sentinel.as_ref() else { continue };
            let mismatches = l.stored.verify_sentinels(&sent.sentinels);
            if !mismatches.is_empty() {
                corrupted.push((i, mismatches));
            }
        }
        corrupted
    }

    /// One full ABFT round: verify all sentinels, then repair every
    /// corrupted level that retains its high-precision parent. Returns the
    /// repairs performed (empty when everything matched, nothing was
    /// repairable, or sentinels are off).
    pub fn verify_and_repair(&mut self, trigger: RepairTrigger) -> Vec<RepairEvent> {
        if !self.config.integrity.sentinels {
            return Vec::new();
        }
        let corrupted = self.verify_integrity();
        let mut events = Vec::new();
        for (level, mismatches) in corrupted {
            let taps: Vec<usize> = mismatches.iter().map(|m| m.tap).collect();
            if let Some(event) = self.repair_level(level, taps, trigger) {
                events.push(event);
            }
        }
        events
    }

    /// Localized repair of one corrupted level: re-truncates its stored
    /// matrix from the retained high-precision parent through the same
    /// deterministic store path setup used, which reproduces the
    /// uncorrupted planes *bit-identically* — no other level is touched
    /// and nothing is rebuilt. `taps` records which planes the sentinel
    /// sweep flagged (for the event log). Returns `None` when the level
    /// has no retained parent, the repair budget is spent, or the
    /// re-truncation fails.
    pub fn repair_level(
        &mut self,
        level: usize,
        taps: Vec<usize>,
        trigger: RepairTrigger,
    ) -> Option<RepairEvent> {
        if self.info.repairs.len() >= self.config.integrity.max_repairs {
            return None;
        }
        let parent = self.repair_sources.get(level)?.as_ref()?;
        let precision = self.levels[level].stored.precision();
        let stored = truncate_level(parent, precision, &self.config, level).ok()?;
        self.levels[level].stored = stored;
        let event = RepairEvent { level, taps, precision, trigger };
        self.info.repairs.push(event.clone());
        Some(event)
    }
}

/// The storage precisions the recovery path insures.
fn is_narrow(p: Precision) -> bool {
    matches!(p, Precision::F16 | Precision::BF16)
}

/// The retained FP64 Galerkin chain (Algorithm 1 lines 1–3): the finest
/// operator plus every coarse triple-product operator, *before* any
/// scaling or truncation. This is the expensive, reusable part of setup
/// — a hierarchy cache retains it and re-runs only the cheap per-level
/// scale-and-truncate ([`Mg::setup_from_chain`]) or swaps in a drifted
/// finest operator while keeping the coarse tail
/// ([`Mg::setup_rescaled`]).
///
/// Only value-preserving configurations are chain-compatible: under
/// `ScaleStrategy::ScaleThenSetup` the finest matrix is rescaled before
/// the triple products run, baking one request's scaling into every
/// coarse operator, so [`GalerkinChain::build`] refuses that strategy
/// with a typed error instead of caching a single-use artifact.
#[derive(Clone, Debug)]
pub struct GalerkinChain {
    mats: Vec<SgDia<f64>>,
}

impl GalerkinChain {
    /// Builds the FP64 chain for `a` under `config` (coarsening policy,
    /// level bounds, and layout are honored; storage/scaling knobs do
    /// not affect the chain).
    ///
    /// # Errors
    /// [`SetupError::ChainIncompatible`] for `ScaleThenSetup` configs;
    /// [`SetupError::InvalidConfig`]/[`SetupError::TooManyComponents`]
    /// as in [`Mg::setup`].
    pub fn build(a: &SgDia<f64>, config: &MgConfig) -> Result<Self, SetupError> {
        config.validate()?;
        if a.grid().components > 8 {
            return Err(SetupError::TooManyComponents);
        }
        reject_prescaled(config)?;
        let finest = a.to_layout(config.layout);
        Ok(GalerkinChain { mats: build_chain(finest, config) })
    }

    /// Number of levels in the chain (≥ 1).
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// Always false — the chain holds at least the finest operator.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// The finest-level operator.
    pub fn finest(&self) -> &SgDia<f64> {
        &self.mats[0]
    }

    /// Every level's operator, finest first.
    pub fn matrices(&self) -> &[SgDia<f64>] {
        &self.mats
    }

    /// Total bytes of FP64 value data the chain keeps resident — what a
    /// hierarchy cache entry pays to retain it.
    pub fn value_bytes(&self) -> usize {
        self.mats.iter().map(|m| m.value_bytes()).sum()
    }

    /// Replaces the finest operator in place (same geometry required),
    /// keeping the coarse tail — the cache's rescale-in-place commit:
    /// after this, [`Mg::setup_from_chain`] serves the drifted operator
    /// directly.
    ///
    /// # Errors
    /// [`SetupError::ChainIncompatible`] on a geometry mismatch.
    pub fn swap_finest(
        &mut self,
        finest: &SgDia<f64>,
        config: &MgConfig,
    ) -> Result<(), SetupError> {
        self.check_finest_geometry(finest)?;
        self.mats[0] = finest.to_layout(config.layout);
        Ok(())
    }

    /// Checks that `finest` matches the chain's finest-level geometry.
    fn check_finest_geometry(&self, finest: &SgDia<f64>) -> Result<(), SetupError> {
        let own = self.finest();
        if finest.grid() != own.grid() || finest.pattern().len() != own.pattern().len() {
            return Err(SetupError::ChainIncompatible {
                reason: format!(
                    "finest operator geometry {}×{}×{} ({} taps) does not match the chain's \
                     {}×{}×{} ({} taps)",
                    finest.grid().nx,
                    finest.grid().ny,
                    finest.grid().nz,
                    finest.pattern().len(),
                    own.grid().nx,
                    own.grid().ny,
                    own.grid().nz,
                    own.pattern().len(),
                ),
            });
        }
        Ok(())
    }
}

/// Refuses configs whose chain would embed a finest-level scaling.
fn reject_prescaled(config: &MgConfig) -> Result<(), SetupError> {
    if config.scale == ScaleStrategy::ScaleThenSetup {
        return Err(SetupError::ChainIncompatible {
            reason: "ScaleThenSetup bakes a finest-level scaling into the Galerkin chain, \
                     making it single-use; use SetupThenScale for chain reuse"
                .to_string(),
        });
    }
    Ok(())
}

/// The Galerkin coarsening loop (Algorithm 1 lines 1–3): RAP triple
/// products down to the configured coarsest size.
fn build_chain(finest: SgDia<f64>, config: &MgConfig) -> Vec<SgDia<f64>> {
    let mut chain: Vec<SgDia<f64>> = vec![finest];
    while chain.len() < config.max_levels.max(1) {
        // The chain is never empty: the finest matrix is pushed above.
        let Some(last) = chain.last() else { break };
        if last.grid().is_coarsest(config.min_coarse_cells) {
            break;
        }
        let axes = select_axes(last, config.coarsening);
        if last.grid().coarsen_axes(axes) == *last.grid() {
            break; // nothing left to coarsen
        }
        chain.push(galerkin_rap_axes(last, axes));
    }
    chain
}

/// Chooses the coarsening axes for one level: all of them for full
/// coarsening; under semicoarsening, those whose face-coupling strength
/// is within `threshold` of the strongest (always at least the strongest
/// coarsenable axis, so the hierarchy makes progress).
fn select_axes(a: &SgDia<f64>, policy: Coarsening) -> (bool, bool, bool) {
    let grid = a.grid();
    let can = [grid.nx > 1, grid.ny > 1, grid.nz > 1];
    match policy {
        Coarsening::Full => (can[0], can[1], can[2]),
        Coarsening::Semi { threshold } => {
            let s = directional_strength(a);
            let smax = (0..3).filter(|&ax| can[ax]).map(|ax| s[ax]).fold(0.0f64, f64::max);
            if smax == 0.0 {
                return (can[0], can[1], can[2]);
            }
            let mut axes = [false; 3];
            for ax in 0..3 {
                axes[ax] = can[ax] && s[ax] >= threshold * smax;
            }
            if !axes.iter().any(|&b| b) {
                return (can[0], can[1], can[2]);
            }
            (axes[0], axes[1], axes[2])
        }
    }
}

/// One level's stored matrix, scale vectors, smoother data, and
/// truncation audit (Algorithm 1 lines 5–13).
struct LevelParts<Pr: Scalar> {
    stored: StoredMatrix,
    scale: Option<ScaleVectors<Pr>>,
    dinv: BlockDiagInv<Pr>,
    ilu: Option<(StoredMatrix, StoredMatrix)>,
    cheb: Option<f64>,
    /// Audit of the matrix actually truncated (post-scaling when the
    /// level was scaled) against the precision actually used.
    audit: RangeAudit,
    g_clamped_from: Option<f64>,
    /// The exact f64 matrix `stored` was truncated from (post-scaling),
    /// retained for narrow levels under `IntegrityPolicy::retain_parents`
    /// so a corrupted plane can be re-truncated bit-identically.
    parent: Option<SgDia<f64>>,
}

/// Truncates one level's matrix under the configured policy — except for
/// the `ScaleStrategy::None` ablation, which deliberately keeps the
/// unguarded IEEE conversion (overflow to ±∞) so the `K64P32D16-none`
/// failure mode of Fig. 6 stays reproducible.
fn truncate_level(
    a: &SgDia<f64>,
    prec: Precision,
    config: &MgConfig,
    level: usize,
) -> Result<StoredMatrix, SetupError> {
    if config.scale == ScaleStrategy::None {
        return Ok(StoredMatrix::truncate(a, prec, config.layout));
    }
    StoredMatrix::truncate_policy(a, prec, config.layout, config.truncation)
        .map_err(|error| SetupError::Truncation { level, error })
}

fn build_level<Pr: Scalar>(
    ai: &SgDia<f64>,
    prec: Precision,
    config: &MgConfig,
    level: usize,
) -> Result<LevelParts<Pr>, SetupError> {
    let needs_scale = {
        let (max, nonfinite) = ai.abs_max();
        nonfinite || max >= prec.finite_max()
    };
    let retain_parent = config.integrity.retain_parents && is_narrow(prec);
    if config.scale == ScaleStrategy::SetupThenScale && needs_scale {
        // Truncation after scaling (lines 6–9).
        let mut scaled = ai.clone();
        match scaling::scale_symmetric::<Pr>(&mut scaled, config.g_choice, prec.finite_max()) {
            Ok(sv) => {
                let dinv = BlockDiagInv::from_matrix(&scaled)
                    .map_err(|c| SetupError::SingularDiagonalBlock { level, cell: c })?;
                let audit = audit::audit(&scaled, prec);
                let stored = truncate_level(&scaled, prec, config, level)?;
                let ilu = build_ilu(&scaled, prec, config, level)?;
                let cheb = estimate_lambda_if_cheb(&scaled, config);
                let g_clamped_from = sv.g_clamped_from;
                return Ok(LevelParts {
                    stored,
                    scale: Some(sv),
                    dinv,
                    ilu,
                    cheb,
                    audit,
                    g_clamped_from,
                    parent: retain_parent.then_some(scaled),
                });
            }
            Err(_) => {
                // Theorem 4.1 requires positive diagonals; deep Galerkin
                // levels of nonsymmetric operators can violate that. Fall
                // back to a storage precision wide enough to hold the
                // level unscaled — the coarse-level analog of
                // `shift_levid` (§4.3), costing almost nothing because
                // coarse levels are small (guideline 3).
                let (max, _) = ai.abs_max();
                let fallback =
                    if max < Precision::F32.finite_max() { Precision::F32 } else { Precision::F64 };
                let dinv = BlockDiagInv::from_matrix(ai)
                    .map_err(|c| SetupError::SingularDiagonalBlock { level, cell: c })?;
                let audit = audit::audit(ai, fallback);
                let stored = truncate_level(ai, fallback, config, level)?;
                let ilu = build_ilu(ai, fallback, config, level)?;
                let cheb = estimate_lambda_if_cheb(ai, config);
                return Ok(LevelParts {
                    stored,
                    scale: None,
                    dinv,
                    ilu,
                    cheb,
                    audit,
                    g_clamped_from: None,
                    // The fallback precision is wide — nothing to repair.
                    parent: None,
                });
            }
        }
    }
    {
        // Direct truncation (line 11) — also the path for `None` and for
        // all levels of scale-then-setup (the chain is already globally
        // scaled). Smoother data comes from the high-precision matrix
        // (line 13).
        let dinv = BlockDiagInv::from_matrix(ai)
            .map_err(|c| SetupError::SingularDiagonalBlock { level, cell: c })?;
        let audit = audit::audit(ai, prec);
        let stored = truncate_level(ai, prec, config, level)?;
        let ilu = build_ilu(ai, prec, config, level)?;
        let cheb = estimate_lambda_if_cheb(ai, config);
        Ok(LevelParts {
            stored,
            scale: None,
            dinv,
            ilu,
            cheb,
            audit,
            g_clamped_from: None,
            parent: retain_parent.then(|| ai.clone()),
        })
    }
}

/// Resolves `StoragePolicy::AutoShift` against the actual Galerkin chain:
/// audits each smoothed level's FP16 truncation (post-scaling, exactly as
/// the store path would perform it) and picks the first level whose
/// underflow-loss fraction exceeds `max_underflow` — or whose truncation
/// would saturate, or whose scaling prerequisite fails — as the switch to
/// the coarse precision. Returns `usize::MAX` (all-FP16) when every level
/// passes.
fn resolve_auto_shift(
    chain: &[&SgDia<f64>],
    config: &MgConfig,
    max_underflow: f64,
) -> ShiftDecision {
    let mut per_level = Vec::new();
    let mut chosen = usize::MAX;
    for (i, ai) in chain.iter().enumerate().take(chain.len().saturating_sub(1)) {
        let prec = Precision::F16;
        let needs_scale = {
            let (max, nonfinite) = ai.abs_max();
            nonfinite || max >= prec.finite_max()
        };
        let a = if config.scale == ScaleStrategy::SetupThenScale && needs_scale {
            let mut scaled = (*ai).clone();
            match scaling::scale_symmetric::<f64>(&mut scaled, config.g_choice, prec.finite_max()) {
                Ok(_) => Some(scaled),
                // Scaling impossible (non-positive diagonal): FP16 cannot
                // hold this level safely, so the switch point is here.
                Err(_) => None,
            }
        } else {
            Some((*ai).clone())
        };
        match a {
            Some(a) => {
                let lv = audit::audit(&a, prec);
                let bad = lv.saturate > 0
                    || lv.source_non_finite > 0
                    || lv.underflow_loss_fraction() > max_underflow;
                per_level.push(lv);
                if bad {
                    chosen = i;
                    break;
                }
            }
            None => {
                // Audit the unscaled matrix for the record: it shows the
                // saturation that made the level unscalable-to-FP16.
                per_level.push(audit::audit(ai, prec));
                chosen = i;
                break;
            }
        }
    }
    ShiftDecision { chosen, threshold: max_underflow, per_level }
}

/// Upper bound on `λmax(D⁻¹A)` for the Chebyshev smoother: the
/// Gershgorin row-sum bound `max_u Σ_j |a_uj| / a_uu`, computed on the
/// high-precision level matrix during setup. A *rigorous* upper bound is
/// required — Chebyshev polynomials grow exponentially outside their
/// interval, so an underestimated λmax (the failure mode of a few power
/// iterations) makes the smoother amplify the top modes.
fn estimate_lambda_if_cheb(ai: &SgDia<f64>, config: &MgConfig) -> Option<f64> {
    if !matches!(config.smoother, crate::SmootherKind::Chebyshev { .. }) {
        return None;
    }
    let grid = ai.grid();
    let r = grid.components;
    let diag = ai.extract_diagonal();
    let mut rowsum = vec![0.0f64; ai.rows()];
    for (cell, i, j, k) in grid.iter_cells() {
        for (t, tap) in ai.pattern().taps().iter().enumerate() {
            if grid.contains_offset(i, j, k, tap.dx, tap.dy, tap.dz) {
                rowsum[cell * r + tap.cout as usize] += ai.get(cell, t).abs();
            }
        }
    }
    let mut lmax: f64 = 0.0;
    for (u, &s) in rowsum.iter().enumerate() {
        let d = diag[u].abs().max(1e-300);
        lmax = lmax.max(s / d);
    }
    Some(lmax.max(1e-300))
}

/// Factors ILU(0) from the (possibly scaled) high-precision level matrix
/// and truncates L̃/Ũ to the level's storage precision (Algorithm 1 line
/// 13's smoother setup). `None` when the ILU smoother is not configured
/// or the level is a vector PDE (Gauss–Seidel fallback).
fn build_ilu(
    ai: &SgDia<f64>,
    prec: Precision,
    config: &MgConfig,
    level: usize,
) -> Result<Option<(StoredMatrix, StoredMatrix)>, SetupError> {
    if config.smoother != crate::SmootherKind::Ilu0 || ai.grid().components != 1 {
        return Ok(None);
    }
    let f = fp16mg_sgdia::ilu::ilu0(ai)
        .map_err(|c| SetupError::SingularDiagonalBlock { level, cell: c })?;
    let l = StoredMatrix::truncate(&f.l, prec, config.layout);
    let u = StoredMatrix::truncate(&f.u, prec, config.layout);
    Ok(Some((l, u)))
}

impl<K: Scalar, Pr: Scalar> Preconditioner<K> for Mg<Pr> {
    fn apply(&mut self, r: &[K], z: &mut [K]) {
        // Algorithm 2 line 4: truncate the residual to the preconditioner
        // precision, into the workspace's boundary pair. The pair is
        // moved out (`mem::take`, no allocation) for the duration of the
        // call because `apply_pr` needs `&mut self` while reading `rp`.
        let n = self.rows();
        assert_eq!(r.len(), n, "r length");
        assert_eq!(z.len(), n, "z length");
        let (mut rp, mut ep) = self.ws.take_boundary();
        for (d, &s) in rp.iter_mut().zip(r) {
            *d = Pr::from_f64(s.to_f64());
        }
        self.apply_pr(&rp, &mut ep);
        // Line 6: recover the error to the iterative precision.
        for (zi, &e) in z.iter_mut().zip(&ep) {
            *zi = K::from_f64(e.to_f64());
        }
        self.ws.restore_boundary(rp, ep);
    }

    /// A solver breakdown or stagnation may be silent storage corruption
    /// wearing a numerical costume: verify the sentinels and repair what
    /// has a retained parent, so the runtime's cheap retry/repair rungs
    /// can succeed instead of escalating to a full rebuild.
    fn on_health_anomaly(&mut self) -> usize {
        if !self.config.integrity.verify_on_anomaly {
            return 0;
        }
        self.verify_and_repair(RepairTrigger::Anomaly).len()
    }
}
