//! Grid-transfer operators: trilinear prolongation and its transpose.
//!
//! Full coarsening keeps the even-coordinate fine cells (`2c ↔ c`). A fine
//! cell with odd coordinates along some axes is interpolated from its
//! `2^(#odd axes)` coarse parents with weight `(1/2)^(#odd axes)`; the
//! weight of a parent falling outside the coarse grid folds into the
//! surviving one (see [`parents`]). Restriction is exactly the transpose,
//! `R = Pᵀ`, which keeps the Galerkin-coarsened V-cycle symmetric — a
//! requirement for use inside CG. Components of vector PDEs transfer
//! independently (unknown-based system multigrid).

use fp16mg_fp::Scalar;
use fp16mg_grid::Grid3;

/// Enumerates the coarse parents of a fine coordinate along one axis:
/// `(coarse index, weight)`, at most two entries.
///
/// When the upper parent of an odd boundary coordinate falls outside the
/// coarse grid, its weight folds into the surviving parent so the row sum
/// stays 1. This preserves constants in the range of `P` — essential for
/// Neumann-dominated operators, whose near-kernel is the constant vector
/// (dropping the weight instead degrades the two-grid rate from ~0.2 to
/// ~0.65 on such problems), and still near-optimal for Dirichlet ones.
#[inline]
fn parents(x: usize, coarse_n: usize) -> ([(usize, f32); 2], usize) {
    if x.is_multiple_of(2) {
        ([(x / 2, 1.0), (0, 0.0)], 1)
    } else {
        let lo = (x - 1) / 2;
        let hi = x.div_ceil(2);
        if hi < coarse_n {
            ([(lo, 0.5), (hi, 0.5)], 2)
        } else {
            ([(lo, 1.0), (0, 0.0)], 1)
        }
    }
}

/// Per-axis parent lookup: identity when the axis was not coarsened
/// (semicoarsening), the two-parent trilinear rule otherwise.
#[inline]
fn parents_axis(x: usize, fine_n: usize, coarse_n: usize) -> ([(usize, f32); 2], usize) {
    if coarse_n == fine_n {
        ([(x, 1.0), (0, 0.0)], 1)
    } else {
        parents(x, coarse_n)
    }
}

/// Checks that `coarse` is a valid (semi)coarsening of `fine` and that
/// component counts agree.
fn assert_coarsening_pair(fine: &Grid3, coarse: &Grid3) {
    assert_eq!(fine.components, coarse.components, "component mismatch");
    for (f, c) in [(fine.nx, coarse.nx), (fine.ny, coarse.ny), (fine.nz, coarse.nz)] {
        assert!(c == f || c == f.div_ceil(2), "not a coarsening pair: {f} -> {c}");
    }
}

/// `uf += P uc`: interpolates the coarse correction onto the fine grid and
/// accumulates (Algorithm 3 line 20).
///
/// # Panics
/// Panics on dimension mismatch or when `coarse` is not a (semi)coarsening
/// of `fine`.
pub fn prolong_add<P: Scalar>(fine: &Grid3, coarse: &Grid3, uc: &[P], uf: &mut [P]) {
    assert_coarsening_pair(fine, coarse);
    assert_eq!(uc.len(), coarse.unknowns(), "uc length");
    assert_eq!(uf.len(), fine.unknowns(), "uf length");
    let r = fine.components;
    for k in 0..fine.nz {
        let (pk, nk) = parents_axis(k, fine.nz, coarse.nz);
        for j in 0..fine.ny {
            let (pj, nj) = parents_axis(j, fine.ny, coarse.ny);
            for i in 0..fine.nx {
                let (pi, ni) = parents_axis(i, fine.nx, coarse.nx);
                let fu = fine.cell(i, j, k) * r;
                for (ck, wk) in &pk[..nk] {
                    for (cj, wj) in &pj[..nj] {
                        for (ci, wi) in &pi[..ni] {
                            let w = P::from_f32(wi * wj * wk);
                            let cu = coarse.cell(*ci, *cj, *ck) * r;
                            for c in 0..r {
                                uf[fu + c] = w.mul_add(uc[cu + c], uf[fu + c]);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// `fc = Pᵀ rf`: restricts the fine residual to the coarse grid
/// (Algorithm 3 line 12). Overwrites `fc`.
///
/// # Panics
/// Panics on dimension mismatch or when `coarse != fine.coarsen()`.
pub fn restrict<P: Scalar>(fine: &Grid3, coarse: &Grid3, rf: &[P], fc: &mut [P]) {
    assert_coarsening_pair(fine, coarse);
    assert_eq!(rf.len(), fine.unknowns(), "rf length");
    assert_eq!(fc.len(), coarse.unknowns(), "fc length");
    let r = fine.components;
    fc.fill(P::ZERO);
    for k in 0..fine.nz {
        let (pk, nk) = parents_axis(k, fine.nz, coarse.nz);
        for j in 0..fine.ny {
            let (pj, nj) = parents_axis(j, fine.ny, coarse.ny);
            for i in 0..fine.nx {
                let (pi, ni) = parents_axis(i, fine.nx, coarse.nx);
                let fu = fine.cell(i, j, k) * r;
                for (ck, wk) in &pk[..nk] {
                    for (cj, wj) in &pj[..nj] {
                        for (ci, wi) in &pi[..ni] {
                            let w = P::from_f32(wi * wj * wk);
                            let cu = coarse.cell(*ci, *cj, *ck) * r;
                            for c in 0..r {
                                fc[cu + c] = w.mul_add(rf[fu + c], fc[cu + c]);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// A fine cell's coarse parent: cell index, coarse coordinates, weight.
pub(crate) type Parent = (usize, (u32, u32, u32), f64);

/// Collects the coarse parents of a fine cell into a fixed buffer (at
/// most 8), returning the count — allocation-free for the hot RAP loop.
pub(crate) fn cell_parents_into(
    fine: &Grid3,
    coarse: &Grid3,
    i: usize,
    j: usize,
    k: usize,
    out: &mut [Parent; 8],
) -> usize {
    let (pi, ni) = parents_axis(i, fine.nx, coarse.nx);
    let (pj, nj) = parents_axis(j, fine.ny, coarse.ny);
    let (pk, nk) = parents_axis(k, fine.nz, coarse.nz);
    let mut n = 0;
    for (ck, wk) in &pk[..nk] {
        for (cj, wj) in &pj[..nj] {
            for (ci, wi) in &pi[..ni] {
                out[n] = (
                    coarse.cell(*ci, *cj, *ck),
                    (*ci as u32, *cj as u32, *ck as u32),
                    (*wi * *wj * *wk) as f64,
                );
                n += 1;
            }
        }
    }
    n
}
