//! One multigrid level: stored matrix, scaling vectors, smoother data,
//! and the per-level vector operations of Algorithm 3.

use fp16mg_fp::Scalar;
use fp16mg_grid::Grid3;
use fp16mg_sgdia::kernels::{BlockDiagInv, Par};
use fp16mg_sgdia::scaling::{rescale_into, ScaleVectors};

use crate::config::SmootherKind;
use crate::stored::StoredMatrix;
use crate::workspace::LevelBufs;

/// A level of the hierarchy (everything except the coarsest, which is a
/// dense direct solve). Levels hold only operator data; the solve
/// vectors (`u`, `f`, `r`, scratch) live in the hierarchy's
/// [`Workspace`](crate::workspace::Workspace) arena and are passed in
/// per call, so a level rebuild (promotion, repair) never reallocates
/// the hot-loop buffers.
pub(crate) struct Level<Pr: Scalar> {
    /// This level's grid.
    pub grid: Grid3,
    /// The (possibly scaled) matrix in storage precision.
    pub stored: StoredMatrix,
    /// Rescale vectors when setup-then-scale fired on this level.
    pub scale: Option<ScaleVectors<Pr>>,
    /// Inverse diagonal blocks of the *stored* (scaled) operator, in the
    /// computation precision (never FP16 — guideline 4).
    pub dinv: BlockDiagInv<Pr>,
    /// ILU(0) factors in storage precision when the ILU smoother is
    /// configured (unit-lower L, upper U).
    pub ilu: Option<(StoredMatrix, StoredMatrix)>,
    /// Estimated `λmax(D⁻¹A)` of the stored (scaled) operator when the
    /// Chebyshev smoother is configured.
    pub cheb_lambda: Option<f64>,
    par: Par,
}

impl<Pr: Scalar> Level<Pr> {
    pub fn new(
        grid: Grid3,
        stored: StoredMatrix,
        scale: Option<ScaleVectors<Pr>>,
        dinv: BlockDiagInv<Pr>,
        ilu: Option<(StoredMatrix, StoredMatrix)>,
        cheb_lambda: Option<f64>,
        par: Par,
    ) -> Self {
        Level { grid, stored, scale, dinv, ilu, cheb_lambda, par }
    }

    /// `ν` smoothing sweeps on `A u = f`, updating `b.u` in place.
    /// `post` selects the transposed sweep direction (Algorithm 3
    /// line 17). For a scaled level, the sweep runs in the scaled space
    /// `Ã (S u) = S⁻¹ f` — algebraically identical to sweeping the true
    /// operator, at the cost of three vector transforms (the
    /// recover-and-rescale overhead the paper calls cost-efficient).
    pub fn smooth(&self, kind: SmootherKind, nu: usize, post: bool, b: &mut LevelBufs<'_, Pr>) {
        if nu == 0 {
            return;
        }
        if let Some(sv) = &self.scale {
            // t1 = S u (iterate), t2 = S⁻¹ f (rhs in scaled space).
            rescale_into(b.u, &sv.s, b.t1);
            rescale_into(b.f, &sv.s_inv, b.t2);
            for _ in 0..nu {
                sweep(
                    &self.stored,
                    &self.dinv,
                    self.ilu.as_ref(),
                    self.cheb_lambda,
                    b.t2,
                    b.t1,
                    b.t3,
                    b.t4,
                    b.t5,
                    kind,
                    post,
                    self.par,
                );
            }
            let s_inv = &sv.s_inv;
            rescale_into(b.t1, s_inv, b.u);
        } else {
            for _ in 0..nu {
                sweep(
                    &self.stored,
                    &self.dinv,
                    self.ilu.as_ref(),
                    self.cheb_lambda,
                    b.f,
                    b.u,
                    b.t3,
                    b.t4,
                    b.t5,
                    kind,
                    post,
                    self.par,
                );
            }
        }
    }

    /// `r = f − A u` with the true operator recovered on the fly
    /// (Algorithm 3 lines 6–10): for a scaled level,
    /// `r = S (S⁻¹ f − Ã (S u))`.
    pub fn compute_residual(&self, b: &mut LevelBufs<'_, Pr>) {
        if let Some(sv) = &self.scale {
            rescale_into(b.u, &sv.s, b.t1);
            rescale_into(b.f, &sv.s_inv, b.t2);
            self.stored.residual(b.t2, b.t1, b.r, self.par);
            let s = &sv.s;
            for (ri, &si) in b.r.iter_mut().zip(s) {
                *ri *= si;
            }
        } else {
            self.stored.residual(b.f, b.u, b.r, self.par);
        }
    }
}

/// One smoothing sweep on the stored operator (already in scaled space if
/// applicable).
#[allow(clippy::too_many_arguments)]
fn sweep<Pr: Scalar>(
    stored: &StoredMatrix,
    dinv: &BlockDiagInv<Pr>,
    ilu: Option<&(StoredMatrix, StoredMatrix)>,
    cheb_lambda: Option<f64>,
    b: &[Pr],
    x: &mut [Pr],
    scratch: &mut [Pr],
    scratch2: &mut [Pr],
    scratch3: &mut [Pr],
    kind: SmootherKind,
    post: bool,
    par: Par,
) {
    if let SmootherKind::Chebyshev { degree } = kind {
        // Setup computes λmax whenever the Chebyshev smoother is
        // configured; a missing estimate means the level was built for a
        // different smoother. Degrade to a Gauss–Seidel sweep rather than
        // aborting the whole solve.
        let Some(lmax) = cheb_lambda else {
            debug_assert!(false, "Chebyshev sweep without a λmax estimate");
            if post {
                stored.gs_backward(dinv, b, x);
            } else {
                stored.gs_forward(dinv, b, x);
            }
            return;
        };
        chebyshev_sweep(stored, dinv, lmax, degree.max(1), b, x, scratch, scratch2, scratch3, par);
        return;
    }
    if kind == SmootherKind::Ilu0 {
        if let Some((l, u)) = ilu {
            // x += U⁻¹ L⁻¹ (b − A x): residual, two triangular solves
            // with the truncated factors (mixed-precision SpTRSV), update.
            stored.residual(b, x, scratch, par);
            l.sptrsv_forward(scratch, scratch2);
            u.sptrsv_backward(scratch2, scratch);
            for (xi, &e) in x.iter_mut().zip(scratch.iter()) {
                *xi += e;
            }
            return;
        }
        // Vector PDE fallback: symmetric Gauss–Seidel directions.
        if post {
            stored.gs_backward(dinv, b, x);
        } else {
            stored.gs_forward(dinv, b, x);
        }
        return;
    }
    match kind {
        SmootherKind::Jacobi { weight } => {
            // scratch = b - A x; x += ω D⁻¹ scratch.
            stored.residual(b, x, scratch, par);
            let w = Pr::from_f64(weight);
            let r = dinv.components();
            const MAX_BLOCK: usize = 8;
            let mut blk = [Pr::ZERO; MAX_BLOCK];
            for cell in 0..dinv.cells() {
                dinv.solve(cell, &scratch[cell * r..cell * r + r], &mut blk[..r]);
                for c in 0..r {
                    x[cell * r + c] = w.mul_add(blk[c], x[cell * r + c]);
                }
            }
        }
        SmootherKind::GsSymmetric => {
            if post {
                stored.gs_backward(dinv, b, x);
            } else {
                stored.gs_forward(dinv, b, x);
            }
        }
        SmootherKind::SymGs => {
            stored.gs_forward(dinv, b, x);
            stored.gs_backward(dinv, b, x);
        }
        SmootherKind::Ilu0 | SmootherKind::Chebyshev { .. } => unreachable!("handled above"),
    }
}

/// Chebyshev(degree) smoothing on the Jacobi-preconditioned operator
/// `D⁻¹A`, interval `[λmax/30, 1.1·λmax]` (hypre's defaults): each degree
/// is one residual SpMV plus vector updates — bandwidth-bound, so the
/// FP16 matrix compression converts directly into time.
#[allow(clippy::too_many_arguments)]
fn chebyshev_sweep<Pr: Scalar>(
    stored: &StoredMatrix,
    dinv: &BlockDiagInv<Pr>,
    lmax: f64,
    degree: usize,
    b: &[Pr],
    x: &mut [Pr],
    r: &mut [Pr],
    z: &mut [Pr],
    d: &mut [Pr],
    par: Par,
) {
    let upper = 1.1 * lmax;
    let lower = upper / 30.0;
    let theta = 0.5 * (upper + lower);
    let delta = 0.5 * (upper - lower);
    let sigma = theta / delta;
    let mut rho = 1.0 / sigma;

    let rc = dinv.components();
    let apply_dinv = |src: &[Pr], dst: &mut [Pr]| {
        for cell in 0..dinv.cells() {
            dinv.solve(
                cell,
                &src[cell * rc..(cell + 1) * rc],
                &mut dst[cell * rc..(cell + 1) * rc],
            );
        }
    };

    // d0 = z/θ; x += d0.
    stored.residual(b, x, r, par);
    apply_dinv(r, z);
    let inv_theta = Pr::from_f64(1.0 / theta);
    for (di, &zi) in d.iter_mut().zip(z.iter()) {
        *di = zi * inv_theta;
    }
    for (xi, &di) in x.iter_mut().zip(d.iter()) {
        *xi += di;
    }
    for _ in 1..degree {
        let rho_new = 1.0 / (2.0 * sigma - rho);
        stored.residual(b, x, r, par);
        apply_dinv(r, z);
        let c1 = Pr::from_f64(rho_new * rho);
        let c2 = Pr::from_f64(2.0 * rho_new / delta);
        for (di, &zi) in d.iter_mut().zip(z.iter()) {
            *di = c1 * *di + c2 * zi;
        }
        for (xi, &di) in x.iter_mut().zip(d.iter()) {
            *xi += di;
        }
        rho = rho_new;
    }
}
