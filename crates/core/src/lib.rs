//! FP16-accelerated structured algebraic multigrid preconditioner.
//!
//! This crate is the paper's primary contribution: a StructMG-style
//! structured AMG whose matrices can be stored in FP16 (or BF16/FP32/FP64,
//! per level) while its vectors stay in the computation precision,
//! following the four guidelines of §3:
//!
//! 1. matrices are compressed eagerly (they dominate memory traffic);
//! 2. the SG-DIA format keeps the whole footprint compressible;
//! 3. FP16 is applied from the *finest* level down, with an optional
//!    switch back to FP32 from level `shift_levid` to dodge coarse-level
//!    underflow (§4.3);
//! 4. vectors are never stored in FP16.
//!
//! The setup phase implements Algorithm 1 (*setup-then-scale*): Galerkin
//! coarsening runs entirely in `f64`, then each level is symmetrically
//! scaled per Theorem 4.1 — only if its values exceed the storage format's
//! range — and truncated. The solve phase implements Algorithm 3: a
//! V-cycle whose kernels *recover and rescale on the fly*, never
//! materializing a high-precision matrix copy. The deliberately inferior
//! *scale-then-setup* strategy and the no-scaling variant are also
//! implemented for the Fig. 6 ablation.
//!
//! [`Mg`] implements [`fp16mg_krylov::Preconditioner`], so it drops into
//! the CG/GMRES solvers unchanged (Algorithm 2).

#![warn(missing_docs)]
mod coarsen;
mod config;
mod hierarchy;
mod level;
mod ops;
mod smoother;
mod stored;
mod transfer;
mod workspace;

pub use coarsen::{directional_strength, galerkin_rap, galerkin_rap_axes};
pub use config::{
    Coarsening, ConfigError, Cycle, IntegrityPolicy, MgConfig, RecoveryPolicy, ScaleStrategy,
    SmootherKind, StoragePolicy,
};
pub use fp16mg_sgdia::audit::{RangeAudit, TruncationError, TruncationPolicy};
pub use fp16mg_sgdia::sentinel::{MatrixSentinels, TapMismatch, TapSentinel};
pub use hierarchy::{
    GalerkinChain, LevelInfo, LevelSentinel, Mg, MgInfo, PromotionEvent, PromotionReason,
    RepairEvent, RepairTrigger, SetupError, ShiftDecision,
};
pub use ops::MatOp;
pub use smoother::{DenseLu, FactorError};
pub use stored::StoredMatrix;
pub use transfer::{prolong_add, restrict};
pub use workspace::MAX_ARENA_BYTES;

#[cfg(test)]
mod tests;
